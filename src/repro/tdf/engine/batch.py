"""Lockstep batch executor: many testcases through one firing program.

Campaign workloads (mutation kill matrices, generation ask() rounds)
run *many* stimuli through structurally identical clusters.  This
module executes a whole batch of such simulations in lockstep windows:

* **Members** — each :class:`BatchMember` owns an independent
  elaborated cluster + :class:`~repro.tdf.simulator.Simulator`; the
  batch shares one ScaTime memo and (per alignment group) one windowed
  driver loop.
* **Alignment groups** — members whose compiled programs have the same
  *shape* (same op-kind sequence — i.e. the same schedule signature)
  advance window-by-window together; members whose schedules diverge
  (dynamic TDF, rate mutants) regroup every round and keep running,
  just without cross-member fusion.
* **SoA pre lane** — hoisted (pre) slots whose module class defines
  ``processing_block_batch`` fire all members through one
  :class:`~repro.tdf.engine.blocks.BatchBlock` call: member-major 2-D
  sample arrays, one numpy broadcast per slot when bit-safe.
* **Core lane** — per-period ops run member-major (each member's ops in
  its own program order) so an exception in one member's mutated
  ``processing()`` retires only that member, never its groupmates.
* **Early-exit masks** — after every window the consumer's
  ``on_window`` hook may retire a member (e.g. a mutant whose oracle
  trace already diverged beyond tolerance — its verdict is monotone,
  so the remaining periods cannot change it).
* **Deferred traces** — :class:`DeferredTraces` replaces write
  observers (which force every traced driver onto the interpreted
  slow path) with post-window reconstruction of the exact
  ``(time, value)`` rows from committed token buffers.

The hard invariant everywhere: a batched run produces byte-identical
observable results (trace rows, probe streams, kill matrices) to the
serial block engine, at every batch size.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...obs import get_telemetry
from ..errors import SimulationError
from ..time import ScaTime
from .blocks import BatchBlock, FiringBlock, produce_block
from .compiler import CompiledProgram, _WindowRollback, compile_program, program_signature
from .executor import BlockEngine

#: Upper bound of the ``--batch-size auto`` heuristic: beyond this the
#: shared-memo / shared-loop wins flatten out while peak memory (one
#: live cluster per member) keeps growing.
AUTO_BATCH_MAX = 32


def resolve_batch_size(request, population: Optional[int] = None) -> Optional[int]:
    """Map a ``--batch-size`` request onto a concrete size.

    ``None`` disables batching; ``"auto"`` picks ``min(population,
    AUTO_BATCH_MAX)`` (or :data:`AUTO_BATCH_MAX` when the population is
    unknown); a positive int is used as-is.
    """
    if request is None:
        return None
    if request == "auto":
        if population is None:
            return AUTO_BATCH_MAX
        return max(1, min(population, AUTO_BATCH_MAX))
    size = int(request)
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {request!r}")
    return size


# -- deferred tracing ----------------------------------------------------------


class _TraceEntry:
    __slots__ = ("name", "signal", "rows", "watermark", "params", "base_fs")

    def __init__(self, name, signal) -> None:
        self.name = name
        self.signal = signal
        self.rows: List[tuple] = []
        self.watermark = 0
        self.params: Optional[tuple] = None
        self.base_fs = 0


class DeferredTraces:
    """Observer-free signal tracing for batched runs.

    A :class:`~repro.tdf.trace.Tracer` records rows through write
    observers, which (a) cost a callback per sample and (b) force the
    traced driver module off every compiled fast path
    (``traced_signal`` fallback).  This class records nothing during
    execution: after each committed window it reads the new tokens
    straight out of the signal buffer and *reconstructs* their
    timestamps from the static schedule — the same
    ``activation_time + offset × port_timestep`` arithmetic the
    interpreter's slow path performs per sample, evaluated once per
    token at window end.  Rows are identical (ScaTime compares by
    femtoseconds; values are the kernel's own tokens).

    Signals keep their tokens until capture via
    ``Signal._retain_from``, so garbage collection never outruns the
    capture watermark.
    """

    def __init__(self, cluster, names: Sequence[str], time_memo=None) -> None:
        self._order = list(names)
        self._entries: List[_TraceEntry] = []
        self._memo: Dict[int, ScaTime] = {} if time_memo is None else time_memo
        for name in names:
            signal = cluster._signals[name]
            signal._retain_from = 0
            self._entries.append(_TraceEntry(name, signal))

    def begin_window(self, schedule, base_fs: int) -> None:
        """Snapshot the reconstruction parameters of the window about to
        run (they change at dynamic-TDF swaps, so per window)."""
        reps = schedule.repetitions
        ts_map = schedule.module_timesteps
        period_fs = schedule.period_fs
        for entry in self._entries:
            driver = entry.signal.driver
            if driver is None:
                entry.params = None
                continue
            mod_name = driver.module.name
            ts_p = (
                driver.timestep.femtoseconds
                if driver.timestep is not None
                else None
            )
            entry.params = (
                driver.delay,
                driver.rate,
                reps[mod_name],
                ts_map[mod_name].femtoseconds,
                ts_p,
                period_fs,
            )
            entry.base_fs = base_fs

    def capture(self) -> None:
        """Reconstruct rows for every token committed since the last
        capture.  Call after the window's rollback has been applied and
        *before* the garbage-collection sweep."""
        from_fs = ScaTime.from_femtoseconds
        memo = self._memo
        for entry in self._entries:
            signal = entry.signal
            wc = signal._write_count
            w = entry.watermark
            if wc <= w:
                continue
            tokens = signal._tokens
            base_index = signal._base_index
            rows = entry.rows
            if entry.params is None:
                # Undriven signal written outside the engine: no schedule
                # params to reconstruct from (cannot happen through the
                # window loop — writes require an activation).
                for idx in range(w, wc):
                    rows.append((None, tokens[idx - base_index]))
            else:
                delay, rate, q, ts_m, ts_p, period_fs = entry.params
                window_base = entry.base_fs
                start = w if w > delay else delay
                for idx in range(w, wc):
                    value = tokens[idx - base_index]
                    if idx < delay:
                        # Output-port delay priming: written with no
                        # timestamp (Signal.prime_output_delay).
                        rows.append((None, value))
                        continue
                    local = idx - start
                    firing, k = divmod(local, rate)
                    period, fidx = divmod(firing, q)
                    t_fs = window_base + period * period_fs + fidx * ts_m
                    if ts_p is not None:
                        t_fs += k * ts_p
                    t = memo.get(t_fs)
                    if t is None:
                        t = from_fs(t_fs)
                        memo[t_fs] = t
                    rows.append((t, value))
            entry.watermark = wc
            signal._retain_from = wc

    # -- Tracer-compatible access -------------------------------------------

    def names(self) -> List[str]:
        return list(self._order)

    def samples(self, name: str) -> List[tuple]:
        for entry in self._entries:
            if entry.name == name:
                return list(entry.rows)
        raise KeyError(name)

    def trace_map(self) -> Dict[str, List[tuple]]:
        """``{name: rows}`` over the *live* row lists (no copies)."""
        return {entry.name: entry.rows for entry in self._entries}


# -- batch members -------------------------------------------------------------


class BatchMember:
    """One lockstep simulation: an initialized simulator plus status.

    ``status`` moves ``running`` → ``done`` (stop time reached) /
    ``retired`` (consumer early-exit) / ``error`` (an op raised —
    ``error`` holds the exception).  ``payload`` is free for consumer
    bookkeeping (mutant index, testcase, divergence state, ...).
    """

    __slots__ = (
        "key", "sim", "traces", "stop_fs", "status", "error",
        "seconds", "windows", "payload", "_validated", "_engine", "_program",
    )

    def __init__(self, key, sim, stop: ScaTime, traces=None, payload=None) -> None:
        self.key = key
        self.sim = sim
        self.traces = traces
        self.stop_fs = stop.femtoseconds
        self.status = "running"
        self.error: Optional[BaseException] = None
        self.seconds = 0.0
        self.windows = 0
        self.payload = payload if payload is not None else {}
        self._validated: Dict[int, CompiledProgram] = {}
        self._engine = BlockEngine(sim)
        self._program: Optional[CompiledProgram] = None

    @property
    def alive(self) -> bool:
        return self.status == "running"

    def retire(self, status: str, error: Optional[BaseException] = None) -> None:
        self.status = status
        self.error = error


def _batch_consistent(cls: type) -> bool:
    """Whether ``cls``'s ``processing_block_batch`` describes its
    effective block behaviour (mirrors the compiler's
    ``_block_consistent`` MRO walk)."""
    for klass in cls.__mro__:
        d = klass.__dict__
        if "processing_block_batch" in d:
            return True
        if "processing_block" in d or "processing" in d:
            return False
    return False


def _program_shape(program: CompiledProgram) -> tuple:
    """Alignment key: two programs with equal shapes execute the same
    op-kind sequence, so their members can share one window loop (the
    shape is a function of the schedule signature plus instrumentation,
    which is exactly what "mutants sharing a schedule signature"
    means)."""
    if program.batch_shape is None:
        program.batch_shape = (
            tuple(type(op.module) for op in program.pre_ops),
            tuple(
                slot.kind if slot is not None else None
                for slot in program.core_meta
            ),
            len(program.core_ops),
            len(program.post_ops),
            program.full_dynamic,
        )
    return program.batch_shape


# -- the lockstep executor -----------------------------------------------------


class BatchExecutor:
    """Drives a batch of members window-by-window until all complete.

    Sits beside the windowed :class:`~repro.tdf.engine.executor
    .BlockEngine` (which it reuses per member for program compilation
    caching and the slow full-dynamic path).  ``on_window(member)`` is
    the consumer's early-exit hook: called after every committed window
    (traces captured); returning ``False`` retires the member.

    ``raise_errors=False`` records a member's exception on the member
    (``status == "error"``) instead of propagating — the mutation
    consumer maps that to *killed*, matching the serial path's
    runtime-crash semantics.
    """

    def __init__(
        self,
        members: Sequence[BatchMember],
        *,
        on_window: Optional[Callable[[BatchMember], Optional[bool]]] = None,
        raise_errors: bool = True,
        time_memo: Optional[Dict[int, ScaTime]] = None,
        label: str = "",
    ) -> None:
        self.members = list(members)
        self.on_window = on_window
        self.raise_errors = raise_errors
        self.time_memo: Dict[int, ScaTime] = {} if time_memo is None else time_memo
        self.label = label
        self.windows_run = 0
        self.vector_fires = 0
        self.member_fires = 0
        self.early_exits: Dict[str, int] = {}

    # -- programs ----------------------------------------------------------

    def _program_for(self, member: BatchMember, schedule) -> CompiledProgram:
        """Per-member compiled program with the batch's shared time memo.

        Cached under ``schedule._engine_batch_program`` — deliberately a
        *different* attribute from the serial engine's cache, so a batch
        program (whose generic ops close over the batch memo) never
        leaks into serial runs on the same schedule object.
        """
        program = member._validated.get(id(schedule))
        if program is not None:
            return program
        program = getattr(schedule, "_engine_batch_program", None)
        if program is None or program.signature != program_signature(member.sim):
            program = compile_program(member.sim, schedule, self.time_memo)
            schedule._engine_batch_program = program
        member._validated[id(schedule)] = program
        return program

    # -- driving -----------------------------------------------------------

    def run(self) -> None:
        """Run every member to completion (or retirement)."""
        tel = get_telemetry()
        alive = [m for m in self.members if m.alive]
        if tel.enabled:
            with tel.span(
                "tdf.simulate_batch", label=self.label, members=len(self.members)
            ):
                self._drive(alive)
        else:
            self._drive(alive)
        if tel.enabled:
            self._record_telemetry(tel)

    def _drive(self, alive: List[BatchMember]) -> None:
        while alive:
            rounds = self._group(alive)
            for group in rounds:
                if group[0]._program is None:  # pragma: no cover - guard
                    continue
                self._run_group_window(group)
            next_alive = []
            for member in alive:
                if member.alive and member.sim.now.femtoseconds >= member.stop_fs:
                    member.retire("done")
                if member.alive:
                    next_alive.append(member)
            alive = next_alive

    def _group(self, alive: List[BatchMember]) -> List[List[BatchMember]]:
        """Partition the alive members into alignment groups for one
        round, resolving each member's current program on the way."""
        groups: Dict[tuple, List[BatchMember]] = {}
        order: List[tuple] = []
        for member in alive:
            sim = member.sim
            schedule = sim.schedule
            if schedule.period_fs <= 0:
                exc = SimulationError(
                    f"cluster {sim.cluster.name!r} has a zero-length period; "
                    f"check timestep assignments"
                )
                self._fail(member, exc)
                continue
            try:
                program = self._program_for(member, schedule)
            except Exception as exc:  # compilation inspects user modules
                self._fail(member, exc)
                continue
            member._program = program
            slow = program.full_dynamic or bool(sim._period_hooks)
            key = ("slow", id(member)) if slow else _program_shape(program)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(member)
        return [groups[key] for key in order]

    def _fail(self, member: BatchMember, exc: BaseException) -> None:
        if self.raise_errors:
            raise exc
        member.retire("error", exc)

    # -- one group window --------------------------------------------------

    def _run_group_window(self, group: List[BatchMember]) -> None:
        t0 = _time.perf_counter()
        programs = [m._program for m in group]
        program0 = programs[0]
        if program0.full_dynamic or group[0].sim._period_hooks:
            self._run_slow(group[0])
        elif len(group) == 1:
            self._run_single(group[0])
        else:
            self._run_lockstep(group, programs)
        dt = (_time.perf_counter() - t0) / len(group)
        for member in group:
            member.seconds += dt
            member.windows += 1
        self.windows_run += 1

    def _begin(self, member: BatchMember) -> int:
        base_fs = member.sim.now.femtoseconds
        if member.traces is not None:
            member.traces.begin_window(member.sim.schedule, base_fs)
        return base_fs

    def _commit(self, member: BatchMember) -> None:
        """Post-window bookkeeping: capture deferred traces *before* the
        GC sweep (capture advances each signal's retention floor), then
        sweep, then let the consumer's early-exit hook look at the
        fresh rows."""
        if member.traces is not None:
            member.traces.capture()
        for signal in member.sim.cluster.signals:
            signal._collect_garbage()
        if member.alive and self.on_window is not None:
            if self.on_window(member) is False:
                member.retire("retired")
                self.early_exits["on_window"] = (
                    self.early_exits.get("on_window", 0) + 1
                )

    def _remaining(self, member: BatchMember, program: CompiledProgram) -> int:
        period_fs = program.period_fs
        left = member.stop_fs - member.sim.now.femtoseconds
        by_time = -(-left // period_fs)
        # Grow the window geometrically (one program window up to 8×)
        # as a member keeps running: the first windows stay short so a
        # consumer's early-exit check retires diverging members
        # cheaply, while long-running members amortize the fixed
        # per-window cost (begin/commit, trace capture bookkeeping,
        # divergence scan) over ever larger strides.  Results are
        # window-size independent — only the exit granularity changes.
        window = program.window << (member.windows if member.windows < 3 else 3)
        return min(window, by_time)

    def _run_slow(self, member: BatchMember) -> None:
        """Full-dynamic / period-hook member: one period at a time with
        the interpreter's complete end-of-period protocol."""
        base_fs = self._begin(member)
        try:
            member._engine._run_one(member._program, base_fs)
        except Exception as exc:
            self._fail(member, exc)
            return
        self._commit(member)

    def _run_single(self, member: BatchMember) -> None:
        """Singleton group: reuse the serial engine's window executor."""
        program = member._program
        n = self._remaining(member, program)
        base_fs = self._begin(member)
        try:
            member._engine._run_window(program, base_fs, n)
        except Exception as exc:
            self._fail(member, exc)
            return
        self.member_fires += n * len(program.core_ops)
        self._commit(member)

    def _run_lockstep(self, group: List[BatchMember], programs) -> None:
        """The aligned multi-member window."""
        n = min(self._remaining(m, p) for m, p in zip(group, programs))
        bases = []
        rollbacks = []
        for member, program in zip(group, programs):
            bases.append(self._begin(member))
            for port, cell in program.event_cells:
                cell[0] = port._flushed
            rollbacks.append(_WindowRollback() if n > 1 else None)

        # Pre lane, slot-major: every program in the group has the same
        # pre module type at each slot (part of the shape key).
        in_window = [True] * len(group)
        for j in range(len(programs[0].pre_ops)):
            ops = [p.pre_ops[j] for p in programs]
            self._fire_pre_slot(group, ops, n, bases, rollbacks, in_window)

        # Core lane, one member's *whole window* at a time: members are
        # independent (own cluster, own probe lane), so nothing requires
        # per-period interleaving — and running each member contiguously
        # keeps one cluster's working set hot in cache instead of
        # touching every member's signals every period.  An exception
        # retires only the raising member; groupmates are untouched.
        period_fs = [p.period_fs for p in programs]
        completed = [0] * len(group)
        p_base = list(bases)
        pending = [False] * len(group)
        for k, member in enumerate(group):
            if not in_window[k]:
                continue
            core_ops = programs[k].core_ops
            watch = programs[k].dynamic_watch
            pfs = period_fs[k]
            base = p_base[k]
            done = 0
            try:
                while done < n:
                    for op in core_ops:
                        op(base)
                    done += 1
                    base += pfs
                    stop = False
                    for module in watch:
                        if module.has_pending_attribute_requests:
                            pending[k] = True
                            stop = True
                            break
                    if stop:
                        in_window[k] = False
                        break
            except Exception as exc:
                in_window[k] = False
                completed[k] = done
                self._fail(member, exc)
                continue
            completed[k] = done
            p_base[k] = base
        self.member_fires += sum(
            done * len(p.core_ops) for done, p in zip(completed, programs)
        )

        from_fs = ScaTime.from_femtoseconds
        for k, member in enumerate(group):
            if member.status == "error":
                continue
            program = programs[k]
            done = completed[k]
            try:
                for op in program.post_ops:
                    op.fire(done, bases[k], None)
            except Exception as exc:
                self._fail(member, exc)
                continue
            if rollbacks[k] is not None:
                rollbacks[k].apply(n, done)
            sim = member.sim
            sim.now = from_fs(bases[k] + done * period_fs[k])
            sim.periods_run += done
            if pending[k]:
                for module in sim.cluster.modules:
                    if module.has_pending_attribute_requests:
                        module.consume_attribute_requests()
                sim._swap_schedule()
            self._commit(member)

    def _fire_pre_slot(self, group, ops, n, bases, rollbacks, in_window) -> None:
        """One hoisted slot for the whole group: a single
        ``processing_block_batch`` call when the module class provides
        one, per-member ``fire()`` otherwise."""
        cls = type(ops[0].module)
        batch_fn = getattr(cls, "processing_block_batch", None)
        if batch_fn is not None and _batch_consistent(cls) and all(in_window):
            blocks = []
            cursor_snapshot = []
            for op, base_fs, rollback in zip(ops, bases, rollbacks):
                blocks.append(FiringBlock(n * op.q, op.module, base_fs, op.ts_fs))
                cursor_snapshot.append(
                    [
                        (port.signal, id(port), port.signal._cursors[id(port)])
                        for port in op.ins
                    ]
                )
            try:
                batch_fn(BatchBlock(blocks))
            except Exception:
                # Restore the consumed cursors and retry member-major so
                # one member's failure cannot poison its groupmates.
                for snapshot in cursor_snapshot:
                    for signal, key, cursor in snapshot:
                        signal._cursors[key] = cursor
            else:
                for op, block, rollback in zip(ops, blocks, rollbacks):
                    if rollback is not None:
                        q = op.q
                        for port in op.ins:
                            rollback.ins.append((port.signal, id(port), q))
                        rollback.mods.append((op.module, q))
                        for port, values in block.writes:
                            rollback.outs.append(
                                (port, q, values, port._last_value)
                            )
                    for port, values in block.writes:
                        produce_block(port, values)
                    object.__setattr__(
                        op.module,
                        "activation_count",
                        op.module.activation_count + block.n,
                    )
                self.vector_fires += len(group) * n * ops[0].q
                return
        for k, (member, op) in enumerate(zip(group, ops)):
            if not in_window[k]:
                continue
            try:
                op.fire(n, bases[k], rollbacks[k])
            except Exception as exc:
                in_window[k] = False
                self._fail(member, exc)
            else:
                self.member_fires += n * op.q

    # -- telemetry ---------------------------------------------------------

    def _record_telemetry(self, tel) -> None:
        metrics = tel.metrics
        label = self.label or "batch"
        total = len(self.members)
        metrics.counter("tdf.engine_batch_runs", label=label).inc()
        metrics.counter("tdf.engine_batch_members", label=label).inc(total)
        metrics.histogram("tdf.engine_batch_size", label=label).observe(total)
        metrics.counter("tdf.engine_batch_windows", label=label).inc(
            self.windows_run
        )
        for reason, count in self.early_exits.items():
            metrics.counter(
                "tdf.engine_batch_early_exits", label=label, reason=reason
            ).inc(count)
        errors = sum(1 for m in self.members if m.status == "error")
        if errors:
            metrics.counter("tdf.engine_batch_errors", label=label).inc(errors)
        fires = self.vector_fires + self.member_fires
        if fires:
            metrics.counter("tdf.engine_batch_vector_fires", label=label).inc(
                self.vector_fires
            )
            metrics.counter("tdf.engine_batch_member_fires", label=label).inc(
                self.member_fires
            )
            metrics.gauge("tdf.engine_batch_vector_ratio", label=label).set(
                self.vector_fires / fires
            )
        # Fill ratio: window slots actually occupied by running members
        # vs a perfectly full batch (windows × batch size).
        capacity = self.windows_run * total
        if capacity:
            occupied = sum(m.windows for m in self.members)
            metrics.gauge("tdf.engine_batch_fill", label=label).set(
                occupied / capacity
            )


def run_batch(
    members: Sequence[BatchMember],
    *,
    on_window=None,
    raise_errors: bool = True,
    time_memo=None,
    label: str = "",
) -> BatchExecutor:
    """Convenience wrapper: build, run and return the executor."""
    executor = BatchExecutor(
        members,
        on_window=on_window,
        raise_errors=raise_errors,
        time_memo=time_memo,
        label=label,
    )
    executor.run()
    return executor
