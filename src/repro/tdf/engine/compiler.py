"""Schedule compiler: flatten an elaborated :class:`Schedule` into a
firing *program* the block engine executes without per-firing dict
lookups or ScaTime arithmetic.

SDF theory guarantees the periodic schedule is fully static, so every
decision the interpreter re-makes per firing — which ports, what
timestep offset, whether hooks/observers exist, whether the fast flush
applies — is made once here and baked into closures.  A compiled
program has four parts:

* **pre ops** — *windowable* block-capable modules whose entire input
  cone is also hoisted: fired once per execution window, producing
  ``window × repetitions`` samples in a single ``processing_block``
  call.  Their probe write events (if any) are re-emitted at the
  canonical schedule positions by event ops, so the global event order
  is identical to the interpreter's.
* **core ops** — everything in between, in PASS order: per-firing
  specialised SISO ops (gain/delay/buffer), per-period coalesced block
  ops, generic interpreted firings (instrumented or user-defined
  modules — per-sample fallback), and the event ops of hoisted firings.
* **post ops** — block-capable sinks (no output ports): fired once per
  window for the completed periods.
* **metadata** — window size, dynamic-TDF watch list, event counter
  cells and a validation signature.

Fallback classification is per module and reported through the
``tdf.engine_fallbacks`` telemetry counter, with
``tdf.engine_compiled_firings`` / ``tdf.engine_block_firings`` /
``tdf.engine_block_ratio`` summarising how much of the schedule left
the interpreted path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...obs import get_telemetry
from ..module import TdfModule
from ..time import ScaTime
from .blocks import FiringBlock, produce_block

#: Periods per execution window on the fast (hook-free, static-schedule)
#: path.  Bounds both rollback cost on a mid-window dynamic-TDF request
#: and the latency of deferred post-op sinks.
WINDOW_PERIODS = 32


class _ModuleInfo:
    __slots__ = ("capable", "windowable", "reasons", "event_specs", "siso")

    def __init__(self) -> None:
        self.capable = False
        self.windowable = False
        self.reasons: List[str] = []
        #: ``(out_port, [marker_info, ...])`` for probe-marked write hooks.
        self.event_specs: List[Tuple[Any, List[tuple]]] = []
        self.siso: Optional[str] = None  # "gain" | "copy" | None


def _block_consistent(cls: type) -> bool:
    """Whether ``cls``'s ``processing_block`` describes its ``processing``.

    A subclass that overrides ``processing`` without also overriding
    ``processing_block`` would execute the *parent's* block behaviour —
    walk the MRO and require the block implementation to live at (or
    above, in the same class as) the effective ``processing``.
    """
    for klass in cls.__mro__:
        if "processing_block" in klass.__dict__:
            return True
        if "processing" in klass.__dict__:
            return False
    return False


def _classify(module: TdfModule) -> _ModuleInfo:
    from ..library.siso import BufferTdf, DelayTdf, GainTdf

    info = _ModuleInfo()
    reasons = info.reasons
    if type(module).processing_block is TdfModule.processing_block:
        reasons.append("no_block")
    elif not _block_consistent(type(module)):
        reasons.append("processing_override")
    if module._processing_fn is not None:
        # Instrumented (or user-registered) processing: the class-level
        # processing_block no longer describes the executed behaviour.
        reasons.append("instrumented")
    if any(port.rate != 1 for port in module.ports()):
        reasons.append("multirate")
    for port in module.in_ports():
        if port._read_hooks:
            reasons.append("read_hooks")
            break
    traced = foreign = False
    hooked = 0
    for port in module.out_ports():
        sig = port.signal
        if sig is not None and sig._write_observers:
            traced = True
        if port._write_hooks:
            infos = [
                getattr(hook, "__dft_probe_writer__", None)
                for hook in port._write_hooks
            ]
            if any(i is None for i in infos):
                foreign = True
            else:
                hooked += 1
                info.event_specs.append((port, infos))
    if traced:
        reasons.append("traced_signal")
    if foreign:
        reasons.append("foreign_write_hook")
    if hooked > 1:
        reasons.append("multi_out_events")
    info.capable = not reasons
    info.windowable = info.capable and type(module).BLOCK_WINDOWABLE
    if info.capable:
        # Exact-type check: a subclass may change behaviour in ways the
        # specialised op would not reproduce.  Undriven inputs fall back
        # to the generic op, which routes through port.read() and its
        # initial-value handling.
        cls = type(module)
        if cls in (GainTdf, DelayTdf, BufferTdf):
            in_sig = module.in_ports()[0].signal
            if in_sig is not None and in_sig.driver is not None:
                info.siso = "gain" if cls is GainTdf else "copy"
    return info


class _BlockFireOp:
    """Fire ``periods × q`` activations of one module in a single
    ``processing_block`` call (used for pre, post and coalesced core)."""

    __slots__ = ("module", "q", "ts_fs", "ins")

    def __init__(self, module: TdfModule, q: int, ts_fs: int) -> None:
        self.module = module
        self.q = q
        self.ts_fs = ts_fs
        self.ins = module.in_ports()

    def fire_period(self, base_fs: int) -> None:
        """Core-op entry point: one period's worth of firings."""
        self.fire(1, base_fs, None)

    def fire(self, periods: int, base_fs: int, rollback) -> None:
        module = self.module
        n = periods * self.q
        block = FiringBlock(n, module, base_fs, self.ts_fs)
        if rollback is not None:
            q = self.q
            note_in = rollback.ins.append
            for port in self.ins:
                note_in((port.signal, id(port), q))
            rollback.mods.append((module, q))
        module.processing_block(block)
        if rollback is not None:
            note_out = rollback.outs.append
            for port, values in block.writes:
                note_out((port, self.q, values, port._last_value))
        for port, values in block.writes:
            produce_block(port, values)
        object.__setattr__(module, "activation_count", module.activation_count + n)


class _WindowRollback:
    """Undo hoisted pre-op production for periods that never executed."""

    __slots__ = ("ins", "outs", "mods")

    def __init__(self) -> None:
        self.ins: List[tuple] = []   # (signal, cursor_key, per_period_tokens)
        self.outs: List[tuple] = []  # (port, per_period, values, prev_last)
        self.mods: List[tuple] = []  # (module, per_period_activations)

    def apply(self, total_periods: int, completed: int) -> None:
        dropped = total_periods - completed
        if dropped <= 0:
            return
        from .blocks import rollback_block

        for sig, key, q in self.ins:
            sig._cursors[key] -= dropped * q
        for port, q, values, prev_last in self.outs:
            keep = completed * q
            last = values[keep - 1] if keep > 0 else prev_last
            rollback_block(port, dropped * q, last)
        for module, q in self.mods:
            object.__setattr__(
                module, "activation_count", module.activation_count - dropped * q
            )


def _make_event_op(port, infos, cell, batched_buf):
    """Probe write events of one hoisted firing, emitted at its
    canonical position in the period with a running token counter."""
    sig_name = port.signal.name
    if batched_buf is not None and len(infos) == 1:
        from ...instrument.probes import TAG_PW

        append = batched_buf.append
        _probe, var, model, line, kind = infos[0]

        def op(base_fs, cell=cell, append=append, sig_name=sig_name,
               var=var, model=model, line=line, kind=kind):
            index = cell[0]
            cell[0] = index + 1
            append((TAG_PW, sig_name, index, var, model, line, kind))

        return op

    def op(base_fs, cell=cell, port=port, infos=infos):
        index = cell[0]
        cell[0] = index + 1
        for probe, var, model, line, kind in infos:
            probe.generic_write(port, index, var, model, line, kind)

    return op


class SisoSlot:
    """Raw port/signal references of one specialised SISO core op.

    Recorded alongside the op closure (``CompiledProgram.core_meta``)
    so the lockstep batch executor can run the *same* slot of many
    batch members as one structure-of-arrays operation (gather the
    member inputs, one vectorised multiply, scatter the outputs)
    instead of ``B`` closure calls.
    """

    __slots__ = (
        "kind", "module", "in_port", "out_port", "in_sig", "out_sig",
        "in_key", "event", "is_gain",
    )

    def __init__(self, kind, module, in_port, out_port, event) -> None:
        self.kind = kind
        self.module = module
        self.in_port = in_port
        self.out_port = out_port
        self.in_sig = in_port.signal
        self.out_sig = out_port.signal
        self.in_key = id(in_port)
        self.event = event
        self.is_gain = kind == "gain"


def _make_siso_op(module, kind, event_infos):
    """Specialised per-firing op for uninstrumented gain/delay/buffer:
    direct token move with an inline probe event, no FiringBlock.

    Returns ``(op, slot)`` — the closure plus its :class:`SisoSlot`
    descriptor for the batch executor's slot-major lane."""
    in_port = module.in_ports()[0]
    out_port = module.out_ports()[0]
    in_sig = in_port.signal
    out_sig = out_port.signal
    in_key = id(in_port)
    cursors = in_sig._cursors
    out_tokens = out_sig._tokens
    is_gain = kind == "gain"

    event = None
    if event_infos:
        port, infos = event_infos
        batched_buf = getattr(infos[0][0], "_buf", None)
        if batched_buf is not None and len(infos) == 1:
            from ...instrument.probes import TAG_PW

            append = batched_buf.append
            _probe, var, model, line, wkind = infos[0]
            sig_name = out_sig.name

            def event(index, a=append, s=sig_name, v=var, m=model, l=line, k=wkind):
                a((TAG_PW, s, index, v, m, l, k))

        else:

            def event(index, port=out_port, infos=infos):
                for probe, var, model, line, wkind in infos:
                    probe.generic_write(port, index, var, model, line, wkind)

    def op(base_fs, module=module, in_port=in_port, out_port=out_port,
           in_sig=in_sig, out_sig=out_sig, in_key=in_key, cursors=cursors,
           out_tokens=out_tokens, is_gain=is_gain, event=event):
        cursor = cursors[in_key]
        if cursor >= 0:
            try:
                value = in_sig._tokens[cursor - in_sig._base_index]
            except IndexError:
                # Past the end: _value_at raises the kernel's
                # read-past-end SimulationError with full context.
                value = in_sig._value_at(cursor, in_port)
        else:
            # Reader-side delay region: initial values.
            value = in_sig._value_at(cursor, in_port)
        # No per-firing GC: the executor sweeps every cluster signal
        # once per committed window.
        cursors[in_key] = cursor + 1
        if is_gain:
            value = value * module.m_gain
        index = out_port._flushed
        out_tokens.append(value)
        out_sig._write_count += 1
        out_sig.last_write_time = None
        out_port._flushed = index + 1
        out_port._last_value = value
        if event is not None:
            event(index)
        object.__setattr__(module, "activation_count", module.activation_count + 1)

    return op, SisoSlot(kind, module, in_port, out_port, event)


def _make_generic_op(module, offset_fs, time_memo=None):
    """One interpreted firing with the framing decisions precomputed:
    prebound port lists, inline rate-1 flush when unobserved, a single
    resolved processing callable.

    ``time_memo`` (optional ``{femtoseconds: ScaTime}`` dict) memoizes
    activation timestamps — lockstep batch members execute the same
    firing times over and over, so sharing one memo across a batch
    replaces most ScaTime constructions with a dict hit."""
    ins = tuple(
        (port, port.signal, id(port), port.rate) for port in module.in_ports()
    )
    fast_outs = []
    slow_outs = []
    for port in module.out_ports():
        if port.rate == 1 and not port.signal._write_observers:
            fast_outs.append((port, port.signal))
        else:
            slow_outs.append(port)
    fast_outs = tuple(fast_outs)
    slow_outs = tuple(slow_outs)
    processing = module.resolved_processing()
    from_fs = ScaTime.from_femtoseconds
    setattr_ = object.__setattr__
    memo_get = time_memo.get if time_memo is not None else None

    def op(base_fs, module=module, offset_fs=offset_fs, ins=ins,
           fast_outs=fast_outs, slow_outs=slow_outs, processing=processing,
           from_fs=from_fs, setattr_=setattr_, memo_get=memo_get,
           time_memo=time_memo):
        fs = base_fs + offset_fs
        if memo_get is None:
            t = from_fs(fs)
        else:
            t = memo_get(fs)
            if t is None:
                t = from_fs(fs)
                time_memo[fs] = t
        setattr_(module, "_time", t)
        for port, _sig, _key, _rate in ins:
            port._in_activation = True
        for port, _sig in fast_outs:
            port._in_activation = True
            port._pending.clear()
        for port in slow_outs:
            port._begin_activation(t)
        try:
            processing()
        finally:
            for port, sig, key, rate in ins:
                port._in_activation = False
                sig._cursors[key] += rate
            for port, sig in fast_outs:
                port._in_activation = False
                pending = port._pending
                if pending:
                    port._last_value = pending[-1][1]
                    pending.clear()
                sig._tokens.append(port._last_value)
                sig._write_count += 1
                sig.last_write_time = None
                port._flushed += 1
            for port in slow_outs:
                port._end_activation()
        setattr_(module, "activation_count", module.activation_count + 1)

    return op


class CompiledProgram:
    """The flattened firing program for one :class:`Schedule`."""

    __slots__ = (
        "schedule",
        "period_fs",
        "pre_ops",
        "core_ops",
        "core_meta",
        "post_ops",
        "event_cells",
        "dynamic_watch",
        "window",
        "full_dynamic",
        "signature",
        "stats",
        "batch_shape",
    )

    def __init__(self) -> None:
        self.pre_ops: List[_BlockFireOp] = []
        self.core_ops: List = []
        #: Parallel to ``core_ops``: a :class:`SisoSlot` descriptor for
        #: specialised SISO ops, ``None`` for everything else.  The batch
        #: executor uses it to fuse the same slot across batch members.
        self.core_meta: List[Optional[SisoSlot]] = []
        self.post_ops: List[_BlockFireOp] = []
        self.event_cells: List[tuple] = []
        self.dynamic_watch: List[TdfModule] = []
        self.window = WINDOW_PERIODS
        self.full_dynamic = False
        self.stats: Dict[str, Any] = {}
        #: Lazily computed alignment key (see ``repro.tdf.engine.batch``).
        self.batch_shape: Optional[tuple] = None


def program_signature(simulator) -> tuple:
    """Everything a compiled program bakes in that the kernel lets
    callers change between runs: processing registrations, hooks,
    observers.  Unequal signatures force a recompile."""
    parts = []
    for module in simulator.cluster.modules:
        out_state = tuple(
            (tuple(port._write_hooks),
             tuple(port.signal._write_observers) if port.signal is not None else ())
            for port in module.out_ports()
        )
        in_state = tuple(tuple(port._read_hooks) for port in module.in_ports())
        parts.append((module._processing_fn, out_state, in_state))
    return tuple(parts)


def compile_program(simulator, schedule, time_memo=None) -> CompiledProgram:
    """Compile ``schedule`` into a :class:`CompiledProgram`.

    ``time_memo`` threads a shared ``{fs: ScaTime}`` cache into the
    interpreted-fallback ops (see :func:`_make_generic_op`); the batch
    executor passes one memo for the whole batch."""
    cluster = simulator.cluster
    modules = list(cluster.modules)
    reps = schedule.repetitions
    ts_fs = {
        name: ts.femtoseconds for name, ts in schedule.module_timesteps.items()
    }
    info_map = {module: _classify(module) for module in modules}

    # Pre set: windowable modules whose every driven input is fed by
    # another pre module (fixpoint).  Their samples are produced for the
    # whole window up front; a mid-window schedule change rolls the
    # excess back.  A module only enters once its producers are members,
    # so the insertion order IS a topological firing order — and
    # feedback cycles (whose delay slack covers one period, not a whole
    # window) can never enter.
    pre: set = set()
    pre_order: List[TdfModule] = []
    changed = True
    while changed:
        changed = False
        for module in modules:
            info = info_map[module]
            if module in pre or not info.windowable:
                continue
            if all(
                port.signal.driver is None or port.signal.driver.module in pre
                for port in module.in_ports()
            ):
                pre.add(module)
                pre_order.append(module)
                changed = True

    # Post set: block-capable pure sinks — no output ports, so deferring
    # their firings to the end of the window is unobservable.
    post = {
        module
        for module in modules
        if module not in pre
        and info_map[module].capable
        and not module.out_ports()
    }

    program = CompiledProgram()
    program.schedule = schedule
    program.period_fs = schedule.period_fs
    program.full_dynamic = any(
        type(module).change_attributes is not TdfModule.change_attributes
        for module in modules
    )

    for module in pre_order:
        program.pre_ops.append(
            _BlockFireOp(module, reps[module.name], ts_fs[module.name])
        )
    for module in modules:
        if module in post:
            program.post_ops.append(
                _BlockFireOp(module, reps[module.name], ts_fs[module.name])
            )

    # Event counter cells for hoisted firings with probe-marked hooks.
    cell_map: Dict[int, list] = {}
    for module in pre:
        for port, _infos in info_map[module].event_specs:
            cell = [0]
            cell_map[id(port)] = cell
            program.event_cells.append((port, cell))

    firings = schedule.firings
    total = len(firings)
    block_firings = 0
    generic_modules = []
    i = 0
    while i < total:
        module, fidx = firings[i]
        info = info_map[module]
        if module in pre:
            for port, infos in info.event_specs:
                batched_buf = getattr(infos[0][0], "_buf", None)
                program.core_ops.append(
                    _make_event_op(port, infos, cell_map[id(port)], batched_buf)
                )
                program.core_meta.append(None)
            block_firings += 1
            i += 1
            continue
        if module in post:
            block_firings += 1
            i += 1
            continue
        if info.siso is not None:
            specs = info.event_specs[0] if info.event_specs else None
            op, slot = _make_siso_op(module, info.siso, specs)
            program.core_ops.append(op)
            program.core_meta.append(slot)
            block_firings += 1
            i += 1
            continue
        q = reps[module.name]
        if (
            info.capable
            and not info.event_specs
            and fidx == 0
            and i + q <= total
            and all(firings[i + k] == (module, k) for k in range(q))
        ):
            # All q firings are consecutive in the PASS: the tokens for
            # every firing were available at the first one (nothing else
            # fires in between), so they coalesce into one block call.
            program.core_ops.append(
                _BlockFireOp(module, q, ts_fs[module.name]).fire_period
            )
            program.core_meta.append(None)
            program.dynamic_watch.append(module)
            block_firings += q
            i += q
            continue
        offset = ts_fs[module.name] * fidx
        program.core_ops.append(_make_generic_op(module, offset, time_memo))
        program.core_meta.append(None)
        if fidx == 0:
            generic_modules.append(module)
        i += 1

    program.dynamic_watch.extend(generic_modules)
    program.signature = program_signature(simulator)

    fallback_firings = total - block_firings
    program.stats = {
        "total_firings": total,
        "block_firings": block_firings,
        "interpreted_firings": fallback_firings,
        "block_ratio": block_firings / total if total else 0.0,
        "pre_modules": sorted(m.name for m in pre),
        "post_modules": sorted(m.name for m in post),
        "fallbacks": {
            module.name: info_map[module].reasons
            for module in modules
            if info_map[module].reasons
        },
    }

    tel = get_telemetry()
    if tel.enabled:
        name = cluster.name
        metrics = tel.metrics
        metrics.counter("tdf.engine_compiled_programs", cluster=name).inc()
        metrics.counter("tdf.engine_compiled_firings", cluster=name).inc(total)
        metrics.counter("tdf.engine_block_firings", cluster=name).inc(block_firings)
        metrics.gauge("tdf.engine_block_ratio", cluster=name).set(
            program.stats["block_ratio"]
        )
        for module in modules:
            for reason in info_map[module].reasons:
                metrics.counter(
                    "tdf.engine_fallbacks", cluster=name, reason=reason
                ).inc()
    return program
