"""Compiled block-execution engine for the TDF kernel.

The interpreter (:meth:`~repro.tdf.simulator.Simulator.run_period`)
re-derives everything about a firing every time it fires.  This package
compiles the static schedule once into a flattened *program*
(:mod:`~repro.tdf.engine.compiler`), executes it in multi-period windows
(:mod:`~repro.tdf.engine.executor`), and gives library modules a
block-level API (:mod:`~repro.tdf.engine.blocks`) so a whole window of
samples moves through ``processing_block()`` in one call — results stay
bit-identical to the interpreter, including probe event streams.
"""

from .blocks import (
    FiringBlock,
    add_blocks,
    consume_block,
    mul_blocks,
    offset_block,
    produce_block,
    rollback_block,
    scale_block,
    sub_blocks,
)
from .compiler import CompiledProgram, WINDOW_PERIODS, compile_program
from .executor import ENGINES, BlockEngine, resolve_engine

__all__ = [
    "BlockEngine",
    "CompiledProgram",
    "ENGINES",
    "FiringBlock",
    "WINDOW_PERIODS",
    "add_blocks",
    "compile_program",
    "consume_block",
    "mul_blocks",
    "offset_block",
    "produce_block",
    "resolve_engine",
    "rollback_block",
    "scale_block",
    "sub_blocks",
]
