"""Compiled block-execution engine for the TDF kernel.

The interpreter (:meth:`~repro.tdf.simulator.Simulator.run_period`)
re-derives everything about a firing every time it fires.  This package
compiles the static schedule once into a flattened *program*
(:mod:`~repro.tdf.engine.compiler`), executes it in multi-period windows
(:mod:`~repro.tdf.engine.executor`), and gives library modules a
block-level API (:mod:`~repro.tdf.engine.blocks`) so a whole window of
samples moves through ``processing_block()`` in one call — results stay
bit-identical to the interpreter, including probe event streams.
"""

from .batch import (
    AUTO_BATCH_MAX,
    BatchExecutor,
    BatchMember,
    DeferredTraces,
    resolve_batch_size,
    run_batch,
)
from .blocks import (
    BatchBlock,
    FiringBlock,
    add_batch,
    add_blocks,
    consume_block,
    mul_batch,
    mul_blocks,
    offset_batch,
    offset_block,
    produce_block,
    rollback_block,
    scale_batch,
    scale_block,
    sub_batch,
    sub_blocks,
)
from .compiler import CompiledProgram, WINDOW_PERIODS, compile_program
from .executor import ENGINES, BlockEngine, resolve_engine

__all__ = [
    "AUTO_BATCH_MAX",
    "BatchBlock",
    "BatchExecutor",
    "BatchMember",
    "BlockEngine",
    "CompiledProgram",
    "DeferredTraces",
    "ENGINES",
    "FiringBlock",
    "WINDOW_PERIODS",
    "add_batch",
    "add_blocks",
    "compile_program",
    "consume_block",
    "mul_batch",
    "mul_blocks",
    "offset_batch",
    "offset_block",
    "produce_block",
    "resolve_batch_size",
    "resolve_engine",
    "rollback_block",
    "run_batch",
    "scale_batch",
    "scale_block",
    "sub_batch",
    "sub_blocks",
]
