"""Static scheduling of TDF clusters.

Elaboration of a TDF cluster follows the classic synchronous-data-flow
(SDF) recipe, extended with SystemC-AMS timestep propagation:

1. **Rate balance.**  For every signal with writer rate ``r_w`` and a
   reader with rate ``r_r``, the repetition vector ``q`` must satisfy
   ``q[writer] * r_w == q[reader] * r_r``.  The equations are solved
   exactly over rationals; an unsolvable system raises
   :class:`~repro.tdf.errors.RateConsistencyError`.

2. **Timestep propagation.**  Requested module/port timesteps are
   propagated through two kinds of constraints — ``port_ts * rate ==
   module_ts`` within a module, ``writer_ts == reader_ts`` across a
   signal — and checked for consistency.  Components with no timestep
   anywhere raise :class:`~repro.tdf.errors.TimestepError`.

3. **Schedule construction.**  A periodic admissible sequential
   schedule (PASS) is built by symbolically executing token counts;
   feedback loops without sufficient port delays deadlock and raise
   :class:`~repro.tdf.errors.SchedulingDeadlockError`.

The result is a :class:`Schedule`: an ordered list of module firings
covering one cluster period, with exact activation times.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..obs import get_telemetry
from .cluster import Cluster
from .errors import (
    RateConsistencyError,
    SchedulingDeadlockError,
    TimestepError,
)
from .module import TdfModule
from .time import ScaTime


class Schedule:
    """A periodic admissible static schedule for one cluster period."""

    def __init__(
        self,
        cluster: Cluster,
        firings: List[Tuple[TdfModule, int]],
        repetitions: Dict[str, int],
        module_timesteps: Dict[str, ScaTime],
        period: ScaTime,
    ) -> None:
        self.cluster = cluster
        #: Ordered ``(module, firing_index)`` pairs for one period.
        self.firings = firings
        #: Repetition count per module name.
        self.repetitions = repetitions
        #: Derived timestep per module name.
        self.module_timesteps = module_timesteps
        #: Duration of one cluster period.
        self.period = period
        #: Integer femtosecond mirror of :attr:`period` for the hot loop.
        self.period_fs = period.femtoseconds
        #: Precomputed ``(module, femtosecond-offset-within-period)``
        #: pairs: the per-period hot loop turns each into an absolute
        #: activation time with one integer add and one
        #: :meth:`ScaTime.from_femtoseconds` call — no ScaTime
        #: arithmetic per firing.
        self.timed_firings = [
            (module, module_timesteps[module.name].femtoseconds * firing_index)
            for module, firing_index in firings
        ]

    def activation_time(self, module: TdfModule, firing_index: int, period_start: ScaTime) -> ScaTime:
        """Absolute time of ``module``'s ``firing_index``-th activation in a
        period starting at ``period_start``."""
        ts = self.module_timesteps[module.name]
        return period_start + ts * firing_index

    def apply_timesteps(self) -> None:
        """Re-assign the derived module/port timesteps to the cluster.

        Elaboration sets ``module.timestep`` and ``port.timestep`` as a
        side effect; a cached schedule that is *reused* instead of
        rebuilt (see ``Simulator._handle_dynamic_tdf``) must restore
        those assignments, because the intervening configuration may
        have left different values behind.  The integer division is
        exact: this schedule was only cached under a key that pins every
        port rate, and elaboration verified divisibility when it was
        built.
        """
        for module in self.cluster.modules:
            ts = self.module_timesteps[module.name]
            module.timestep = ts
            ts_fs = ts.femtoseconds
            for port in module.ports():
                port.timestep = ScaTime.from_femtoseconds(ts_fs // port.rate)

    def __len__(self) -> int:
        return len(self.firings)

    def __repr__(self) -> str:
        order = ", ".join(f"{m.name}[{k}]" for m, k in self.firings)
        return f"Schedule(period={self.period}, firings=[{order}])"


def _solve_repetitions(cluster: Cluster) -> Dict[str, Fraction]:
    """Solve the SDF balance equations; returns a rational repetition
    vector (per connected component, anchored at 1)."""
    reps: Dict[str, Fraction] = {}
    # Adjacency over modules via signals.
    neighbours: Dict[str, List[Tuple[str, Fraction]]] = defaultdict(list)
    for sig, driver, readers in cluster.bindings():
        if driver is None:
            continue
        w = driver.module
        for reader in readers:
            r = reader.module
            # q[r] = q[w] * (w_rate / r_rate)
            ratio = Fraction(driver.rate, reader.rate)
            neighbours[w.name].append((r.name, ratio))
            neighbours[r.name].append((w.name, 1 / ratio))
    for module in cluster.modules:
        if module.name in reps:
            continue
        reps[module.name] = Fraction(1)
        stack = [module.name]
        while stack:
            current = stack.pop()
            for other, ratio in neighbours[current]:
                expected = reps[current] * ratio
                if other in reps:
                    if reps[other] != expected:
                        raise RateConsistencyError(
                            f"inconsistent port rates around module {other!r}: "
                            f"repetition {reps[other]} vs {expected} required "
                            f"by its connection to {current!r}"
                        )
                else:
                    reps[other] = expected
                    stack.append(other)
    return reps


def _normalise_repetitions(reps: Dict[str, Fraction]) -> Dict[str, int]:
    """Scale a rational repetition vector to the smallest integer one."""
    if not reps:
        return {}
    denominator_lcm = math.lcm(*(f.denominator for f in reps.values()))
    scaled = {name: int(f * denominator_lcm) for name, f in reps.items()}
    common = math.gcd(*scaled.values())
    return {name: value // common for name, value in scaled.items()}


def _propagate_timesteps(
    cluster: Cluster, repetitions: Dict[str, int]
) -> Dict[str, Fraction]:
    """Derive an exact (rational femtoseconds) timestep per module.

    Constraint graph nodes are modules; an edge between writer and
    reader of a signal relates their timesteps through the port rates:
    ``writer_ts / writer_rate == reader_ts / reader_rate`` (both equal
    the shared port/sample timestep of the signal).
    """
    ts: Dict[str, Fraction] = {}
    anchors: Dict[str, Fraction] = {}
    for module in cluster.modules:
        candidates: List[Fraction] = []
        if module.requested_timestep is not None:
            candidates.append(Fraction(module.requested_timestep.femtoseconds))
        for port in module.ports():
            if port.requested_timestep is not None:
                candidates.append(
                    Fraction(port.requested_timestep.femtoseconds) * port.rate
                )
        unique = set(candidates)
        if len(unique) > 1:
            raise TimestepError(
                f"module {module.name!r} has contradictory timestep requests: "
                f"{sorted(float(c) for c in unique)} fs"
            )
        if unique:
            anchors[module.name] = unique.pop()

    neighbours: Dict[str, List[Tuple[str, Fraction]]] = defaultdict(list)
    for sig, driver, readers in cluster.bindings():
        if driver is None:
            continue
        for reader in readers:
            # reader_ts = writer_ts * reader_rate / writer_rate
            ratio = Fraction(reader.rate, driver.rate)
            neighbours[driver.module.name].append((reader.module.name, ratio))
            neighbours[reader.module.name].append((driver.module.name, 1 / ratio))

    for start, value in anchors.items():
        if start in ts:
            if ts[start] != value:
                raise TimestepError(
                    f"module {start!r} timestep request {float(value)} fs "
                    f"contradicts propagated value {float(ts[start])} fs"
                )
            continue
        ts[start] = value
        stack = [start]
        while stack:
            current = stack.pop()
            for other, ratio in neighbours[current]:
                expected = ts[current] * ratio
                if other in ts:
                    if ts[other] != expected:
                        raise TimestepError(
                            f"inconsistent timesteps around module {other!r}: "
                            f"{float(ts[other])} fs vs {float(expected)} fs"
                        )
                elif other in anchors and anchors[other] != expected:
                    raise TimestepError(
                        f"module {other!r} requests timestep "
                        f"{float(anchors[other])} fs but its connection to "
                        f"{current!r} implies {float(expected)} fs"
                    )
                else:
                    ts[other] = expected
                    stack.append(other)

    missing = [m.name for m in cluster.modules if m.name not in ts]
    if missing:
        raise TimestepError(
            f"no timestep assigned or derivable for module(s) {missing}; "
            f"assign set_timestep() somewhere in each connected component"
        )
    for name, value in ts.items():
        if value <= 0 or value.denominator != 1:
            raise TimestepError(
                f"derived timestep for module {name!r} is {float(value)} fs; "
                f"must be a positive whole number of femtoseconds"
            )
    return ts


def _build_pass(
    cluster: Cluster, repetitions: Dict[str, int]
) -> List[Tuple[TdfModule, int]]:
    """Construct a periodic admissible sequential schedule.

    Symbolically executes token counts: a module may fire when every
    bound input port has at least ``rate`` tokens available (port delays
    provide initial tokens).  Deterministic module order keeps the
    schedule reproducible.
    """
    # tokens[signal_name][reader_port_id] available before consumption.
    tokens: Dict[str, Dict[int, int]] = {}
    for sig, driver, readers in cluster.bindings():
        per_reader: Dict[int, int] = {}
        out_delay = driver.delay if driver is not None else 0
        for reader in readers:
            per_reader[id(reader)] = out_delay + reader.delay
        tokens[sig.name] = per_reader

    fired = {m.name: 0 for m in cluster.modules}
    firings: List[Tuple[TdfModule, int]] = []
    total = sum(repetitions.values())

    def can_fire(module: TdfModule) -> bool:
        if fired[module.name] >= repetitions[module.name]:
            return False
        for port in module.in_ports():
            if port.signal is None:
                continue
            if port.signal.driver is None:
                continue  # undriven: reads initial values, never blocks
            if tokens[port.signal.name][id(port)] < port.rate:
                return False
        return True

    def fire(module: TdfModule) -> None:
        for port in module.in_ports():
            if port.signal is not None and port.signal.driver is not None:
                tokens[port.signal.name][id(port)] -= port.rate
        for port in module.out_ports():
            if port.signal is not None:
                for reader in port.signal.readers:
                    tokens[port.signal.name][id(reader)] += port.rate
        firings.append((module, fired[module.name]))
        fired[module.name] += 1

    while len(firings) < total:
        progressed = False
        for module in cluster.modules:
            while can_fire(module):
                fire(module)
                progressed = True
        if not progressed:
            blocked = [
                name
                for name, count in fired.items()
                if count < repetitions[name]
            ]
            raise SchedulingDeadlockError(
                f"cluster {cluster.name!r} deadlocks: modules {blocked} "
                f"cannot fire; add port delays to break the feedback loop"
            )
    return firings


def elaborate(cluster: Cluster, initial: bool = True) -> Schedule:
    """Run full elaboration: attributes, balance, timesteps, PASS.

    On the *initial* elaboration every module's ``set_attributes()``
    runs first; dynamic-TDF re-elaborations (``initial=False``) must
    skip it — ``set_attributes`` describes the static configuration and
    would overwrite the timestep/rate a module just requested through
    ``change_attributes`` (SystemC-AMS calls it exactly once, too).

    With telemetry enabled, every schedule build is counted and timed
    per cluster (``tdf.elaborations`` / ``tdf.elaborate_seconds``) and
    the resulting schedule length is published as a gauge.
    """
    tel = get_telemetry()
    if not tel.enabled:
        return _elaborate(cluster, initial)
    t0 = time.perf_counter()
    schedule = _elaborate(cluster, initial)
    tel.metrics.histogram("tdf.elaborate_seconds", cluster=cluster.name).observe(
        time.perf_counter() - t0
    )
    tel.metrics.counter(
        "tdf.elaborations", cluster=cluster.name, initial=initial
    ).inc()
    tel.metrics.gauge("tdf.schedule_length", cluster=cluster.name).set(
        len(schedule)
    )
    return schedule


def _elaborate(cluster: Cluster, initial: bool) -> Schedule:
    if initial:
        for module in cluster.modules:
            module.set_attributes()
    cluster.check_bindings()
    rational = _solve_repetitions(cluster)
    repetitions = _normalise_repetitions(rational)
    timesteps_fs = _propagate_timesteps(cluster, repetitions)

    # Cluster period: q[m] * ts[m] must agree for all modules in a
    # connected component; across components take the LCM.
    periods = {
        name: repetitions[name] * timesteps_fs[name] for name in repetitions
    }
    period_fs = math.lcm(*(int(p) for p in periods.values())) if periods else 0
    for name, p in periods.items():
        if period_fs % int(p) != 0:
            raise TimestepError(
                f"module {name!r} period {float(p)} fs does not divide the "
                f"cluster period {period_fs} fs"
            )
        if int(p) != period_fs:
            # Scale the module's repetitions so one schedule period covers
            # the full cluster period (multi-component clusters).
            repetitions[name] *= period_fs // int(p)

    module_timesteps = {
        name: ScaTime.from_femtoseconds(int(value))
        for name, value in timesteps_fs.items()
    }
    for module in cluster.modules:
        module.timestep = module_timesteps[module.name]
        for port in module.ports():
            port_fs = timesteps_fs[module.name] / port.rate
            if port_fs.denominator != 1:
                raise TimestepError(
                    f"port {port.full_name()} would get a fractional "
                    f"timestep of {float(port_fs)} fs; refine the module "
                    f"timestep so it divides evenly by the port rate"
                )
            port.timestep = ScaTime.from_femtoseconds(int(port_fs))
    firings = _build_pass(cluster, repetitions)
    return Schedule(
        cluster,
        firings,
        repetitions,
        module_timesteps,
        ScaTime.from_femtoseconds(period_fs),
    )
