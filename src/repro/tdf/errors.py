"""Exception hierarchy for the TDF simulation kernel.

The names mirror the error classes a SystemC-AMS implementation reports
during elaboration and simulation of Timed Data Flow (TDF) clusters:
binding errors, rate/timestep inconsistencies, and scheduling deadlocks.
"""

from __future__ import annotations


class TdfError(Exception):
    """Base class for every error raised by :mod:`repro.tdf`."""


class ElaborationError(TdfError):
    """Raised when a cluster cannot be elaborated.

    Typical causes: an unbound port, a port bound twice, a signal with
    more than one driver, or a module registered under a duplicate name.
    """


class BindingError(ElaborationError):
    """Raised for an illegal port/signal binding."""


class RateConsistencyError(ElaborationError):
    """Raised when the SDF balance equations have no non-trivial solution.

    A multirate TDF cluster is *consistent* when a repetition vector
    ``q`` exists with ``q[writer] * out_rate == q[reader] * in_rate`` for
    every signal.  Inconsistent rate annotations make the token buffers
    grow (or starve) without bound, so elaboration must reject them.
    """


class TimestepError(ElaborationError):
    """Raised when port/module timestep assignments contradict each other
    or when no timestep can be derived for a module at all."""


class SchedulingDeadlockError(ElaborationError):
    """Raised when no periodic admissible static schedule exists.

    This happens for feedback loops that do not carry enough initial
    delay tokens: every module in the loop waits for tokens that only
    the loop itself can produce.
    """


class SimulationError(TdfError):
    """Raised for errors during the simulation phase (after elaboration)."""


class PortAccessError(SimulationError):
    """Raised when a port is read/written outside its declared rate
    (e.g. ``read(2)`` on a port with ``rate == 1``) or outside of the
    module's :meth:`processing` callback."""


class DynamicTdfError(SimulationError):
    """Raised when a dynamic TDF reconfiguration request is illegal,
    e.g. requesting a non-positive timestep or changing attributes of a
    module that opted out with ``ACCEPT_ATTRIBUTE_CHANGES = False``."""
