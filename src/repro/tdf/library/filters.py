"""Filtering and calculus library models.

Discrete-time approximations of common analog blocks, used by the
window-lifter VP (motor-current noise filter) and the buck-boost VP
(inductor/capacitor integration).
"""

from __future__ import annotations

from typing import List, Sequence

from ..module import TdfModule
from ..ports import TdfIn, TdfOut


class FirFilterTdf(TdfModule):
    """Finite impulse response filter with fixed coefficients."""

    OPAQUE_USES = True

    def __init__(self, name: str, coefficients: Sequence[float]) -> None:
        super().__init__(name)
        if not coefficients:
            raise ValueError("FIR filter needs at least one coefficient")
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_coeffs: List[float] = [float(c) for c in coefficients]
        self.m_history: List[float] = [0.0] * len(self.m_coeffs)

    def initialize(self) -> None:
        self.m_history = [0.0] * len(self.m_coeffs)

    def processing(self) -> None:
        sample = self.ip.read()
        self.m_history.insert(0, sample)
        self.m_history.pop()
        acc = 0.0
        for coeff, past in zip(self.m_coeffs, self.m_history):
            acc = acc + coeff * past
        self.op.write(acc)

    def processing_block(self, block) -> None:
        # Stateful (not windowable): replay the per-sample recurrence so
        # the accumulation order — and therefore every rounding step —
        # matches the interpreter exactly.
        coeffs, history = self.m_coeffs, self.m_history
        out = []
        for sample in block.read(self.ip):
            history.insert(0, sample)
            history.pop()
            acc = 0.0
            for coeff, past in zip(coeffs, history):
                acc = acc + coeff * past
            out.append(acc)
        block.write(self.op, out)


class MovingAverageTdf(TdfModule):
    """Moving average over the last ``window`` samples."""

    OPAQUE_USES = True

    def __init__(self, name: str, window: int) -> None:
        super().__init__(name)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_window = int(window)
        self.m_history: List[float] = []

    def initialize(self) -> None:
        self.m_history = []

    def processing(self) -> None:
        sample = self.ip.read()
        self.m_history.append(sample)
        if len(self.m_history) > self.m_window:
            self.m_history.pop(0)
        avg = sum(self.m_history) / len(self.m_history)
        self.op.write(avg)

    def processing_block(self, block) -> None:
        window, history = self.m_window, self.m_history
        out = []
        for sample in block.read(self.ip):
            history.append(sample)
            if len(history) > window:
                history.pop(0)
            out.append(sum(history) / len(history))
        block.write(self.op, out)


class IirLowPassTdf(TdfModule):
    """First-order IIR low-pass: ``y[n] = a*y[n-1] + (1-a)*x[n]``."""

    OPAQUE_USES = True

    def __init__(self, name: str, alpha: float) -> None:
        super().__init__(name)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_alpha = float(alpha)
        self.m_state = 0.0

    def initialize(self) -> None:
        self.m_state = 0.0

    def processing(self) -> None:
        sample = self.ip.read()
        self.m_state = self.m_alpha * self.m_state + (1.0 - self.m_alpha) * sample
        self.op.write(self.m_state)

    def processing_block(self, block) -> None:
        alpha, state = self.m_alpha, self.m_state
        beta = 1.0 - alpha
        out = []
        for sample in block.read(self.ip):
            state = alpha * state + beta * sample
            out.append(state)
        self.m_state = state
        block.write(self.op, out)


class IntegratorTdf(TdfModule):
    """Forward-Euler integrator: accumulates ``x[n] * dt``."""

    OPAQUE_USES = True

    def __init__(self, name: str, initial: float = 0.0, gain: float = 1.0) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_initial = float(initial)
        self.m_gain = float(gain)
        self.m_state = float(initial)

    def initialize(self) -> None:
        self.m_state = self.m_initial

    def processing(self) -> None:
        dt = self.timestep.to_seconds() if self.timestep is not None else 0.0
        self.m_state = self.m_state + self.m_gain * self.ip.read() * dt
        self.op.write(self.m_state)

    def processing_block(self, block) -> None:
        dt = self.timestep.to_seconds() if self.timestep is not None else 0.0
        gain, state = self.m_gain, self.m_state
        out = []
        for sample in block.read(self.ip):
            state = state + gain * sample * dt
            out.append(state)
        self.m_state = state
        block.write(self.op, out)


class DifferentiatorTdf(TdfModule):
    """Backward-difference differentiator: ``(x[n] - x[n-1]) / dt``."""

    OPAQUE_USES = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_prev = 0.0

    def initialize(self) -> None:
        self.m_prev = 0.0

    def processing(self) -> None:
        sample = self.ip.read()
        dt = self.timestep.to_seconds() if self.timestep is not None else 1.0
        slope = (sample - self.m_prev) / dt if dt > 0 else 0.0
        self.m_prev = sample
        self.op.write(slope)

    def processing_block(self, block) -> None:
        dt = self.timestep.to_seconds() if self.timestep is not None else 1.0
        prev = self.m_prev
        out = []
        for sample in block.read(self.ip):
            out.append((sample - prev) / dt if dt > 0 else 0.0)
            prev = sample
        self.m_prev = prev
        block.write(self.op, out)
