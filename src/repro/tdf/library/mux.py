"""Analog multiplexer / demultiplexer library models.

The 4x1 :class:`AnalogMuxTdf` mirrors the paper's ``AM`` model (Fig. 2,
lines 32-39), including the exact def-use structure: a local ``tmp_out``
defined once per branch and written to the output at the end — the
source of the Firm association ``(tmp_out, 34, AM, 38, AM)``.
"""

from __future__ import annotations

from ..module import TdfModule
from ..ports import TdfIn, TdfOut


class AnalogMuxTdf(TdfModule):
    """A 4-to-1 analog mux with an integer select input."""

    OPAQUE_USES = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_select = TdfIn()
        self.ip_port_0 = TdfIn()
        self.ip_port_1 = TdfIn()
        self.ip_port_2 = TdfIn()
        self.ip_port_3 = TdfIn()
        self.op_mux_out = TdfOut()

    def processing(self) -> None:
        tmp_out = 0.0
        sel = self.ip_select.read()
        if sel == 0:
            tmp_out = self.ip_port_0.read()
        elif sel == 1:
            tmp_out = self.ip_port_1.read()
        elif sel == 2:
            tmp_out = self.ip_port_2.read()
        elif sel == 3:
            tmp_out = self.ip_port_3.read()
        self.op_mux_out.write(tmp_out)


class AnalogDemuxTdf(TdfModule):
    """1-to-4 demux: routes the input to the selected output, 0 elsewhere."""

    OPAQUE_USES = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.ip_select = TdfIn()
        self.op_port_0 = TdfOut()
        self.op_port_1 = TdfOut()
        self.op_port_2 = TdfOut()
        self.op_port_3 = TdfOut()

    def processing(self) -> None:
        value = self.ip.read()
        sel = self.ip_select.read()
        self.op_port_0.write(value if sel == 0 else 0.0)
        self.op_port_1.write(value if sel == 1 else 0.0)
        self.op_port_2.write(value if sel == 2 else 0.0)
        self.op_port_3.write(value if sel == 3 else 0.0)
