"""Redefining single-input single-output library elements.

Paper §IV-B limits signal *redefinition* to SystemC-AMS library SISO
components: a **delay** element outputs an earlier sample instead of the
current one, and a **gain**/**buffer** element amplifies or regenerates
the signal.  Data flowing through any of these counts as redefined,
which is what turns a port-level association into *PFirm* (original and
redefined branch meet in the same model) or *PWeak* (only redefined
branches arrive).

All three classes set ``REDEFINING = True`` and ``OPAQUE_USES = True``:
the static analysis does not look inside them; their definition/use
anchors are the netlist bind sites of their ports (paper §V).
"""

from __future__ import annotations

from ..engine.blocks import scale_batch, scale_block
from ..module import TdfModule
from ..ports import TdfIn, TdfOut


class GainTdf(TdfModule):
    """Amplifies the input by a constant factor (``sca_tdf::sca_gain``)."""

    REDEFINING = True
    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, gain: float = 1.0) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_gain = float(gain)

    def processing(self) -> None:
        self.op.write(self.ip.read() * self.m_gain)

    def processing_block(self, block) -> None:
        block.write(self.op, scale_block(block.read(self.ip), self.m_gain))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", scale_batch(batch.read("ip"), batch.params("m_gain")))


class DelayTdf(TdfModule):
    """Delays the input by ``delay`` samples (the ``Z^-1`` element).

    Implemented with an output-port delay: the port emits ``delay``
    initial samples (``initial_value``) before the first computed one,
    which also makes the element usable to break feedback loops.
    """

    REDEFINING = True
    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, delay: int = 1, initial_value: float = 0.0) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_delay = int(delay)
        self.m_initial = float(initial_value)

    def set_attributes(self) -> None:
        self.op.set_delay(self.m_delay)
        self.op.set_initial_value(self.m_initial)

    def processing(self) -> None:
        self.op.write(self.ip.read())

    def processing_block(self, block) -> None:
        block.write(self.op, block.read(self.ip))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", batch.read("ip"))


class BufferTdf(TdfModule):
    """Regenerates the input signal unchanged (unit buffer)."""

    REDEFINING = True
    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        self.op.write(self.ip.read())

    def processing_block(self, block) -> None:
        block.write(self.op, block.read(self.ip))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", batch.read("ip"))
