"""Arithmetic and threshold library models.

These are *analyzable* library components (their defs/uses participate
in the data-flow analysis like any user model) with input uses anchored
at the netlist (``OPAQUE_USES``).  None of them is a redefining SISO
element in the paper's sense — redefinition is reserved for
gain/delay/buffer (see :mod:`repro.tdf.library.siso`).
"""

from __future__ import annotations

from ..engine.blocks import (
    add_batch,
    add_blocks,
    mul_batch,
    mul_blocks,
    offset_batch,
    offset_block,
    sub_batch,
    sub_blocks,
)
from ..module import TdfModule
from ..ports import TdfIn, TdfOut


class AdderTdf(TdfModule):
    """Writes ``a + b``."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_a = TdfIn()
        self.ip_b = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        total = self.ip_a.read() + self.ip_b.read()
        self.op.write(total)

    def processing_block(self, block) -> None:
        block.write(self.op, add_blocks(block.read(self.ip_a), block.read(self.ip_b)))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", add_batch(batch.read("ip_a"), batch.read("ip_b")))


class SubtractorTdf(TdfModule):
    """Writes ``a - b``."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_a = TdfIn()
        self.ip_b = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        diff = self.ip_a.read() - self.ip_b.read()
        self.op.write(diff)

    def processing_block(self, block) -> None:
        block.write(self.op, sub_blocks(block.read(self.ip_a), block.read(self.ip_b)))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", sub_batch(batch.read("ip_a"), batch.read("ip_b")))


class MultiplierTdf(TdfModule):
    """Writes ``a * b``."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip_a = TdfIn()
        self.ip_b = TdfIn()
        self.op = TdfOut()

    def processing(self) -> None:
        product = self.ip_a.read() * self.ip_b.read()
        self.op.write(product)

    def processing_block(self, block) -> None:
        block.write(self.op, mul_blocks(block.read(self.ip_a), block.read(self.ip_b)))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", mul_batch(batch.read("ip_a"), batch.read("ip_b")))


class OffsetTdf(TdfModule):
    """Adds a constant offset to the input."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, offset: float) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_offset = float(offset)

    def processing(self) -> None:
        shifted = self.ip.read() + self.m_offset
        self.op.write(shifted)

    def processing_block(self, block) -> None:
        block.write(self.op, offset_block(block.read(self.ip), self.m_offset))

    @classmethod
    def processing_block_batch(cls, batch) -> None:
        batch.write("op", offset_batch(batch.read("ip"), batch.params("m_offset")))


class SaturatorTdf(TdfModule):
    """Clamps the input into ``[lo, hi]``."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, lo: float, hi: float) -> None:
        super().__init__(name)
        if lo > hi:
            raise ValueError(f"saturator bounds inverted: lo={lo} > hi={hi}")
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_lo = float(lo)
        self.m_hi = float(hi)

    def processing(self) -> None:
        value = self.ip.read()
        if value < self.m_lo:
            value = self.m_lo
        elif value > self.m_hi:
            value = self.m_hi
        self.op.write(value)

    def processing_block(self, block) -> None:
        lo, hi = self.m_lo, self.m_hi
        out = []
        for value in block.read(self.ip):
            if value < lo:
                value = lo
            elif value > hi:
                value = hi
            out.append(value)
        block.write(self.op, out)


class ComparatorTdf(TdfModule):
    """Writes ``True`` when the input exceeds a threshold."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, threshold: float) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_threshold = float(threshold)

    def processing(self) -> None:
        above = self.ip.read() > self.m_threshold
        self.op.write(above)

    def processing_block(self, block) -> None:
        threshold = self.m_threshold
        block.write(self.op, [v > threshold for v in block.read(self.ip)])


class SchmittTriggerTdf(TdfModule):
    """Comparator with hysteresis: output latches between thresholds."""

    OPAQUE_USES = True

    def __init__(self, name: str, low: float, high: float) -> None:
        super().__init__(name)
        if low >= high:
            raise ValueError(f"Schmitt thresholds inverted: low={low} >= high={high}")
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_low = float(low)
        self.m_high = float(high)
        self.m_state = False

    def processing(self) -> None:
        value = self.ip.read()
        if value >= self.m_high:
            self.m_state = True
        elif value <= self.m_low:
            self.m_state = False
        self.op.write(self.m_state)

    def processing_block(self, block) -> None:
        # Stateful: keep BLOCK_WINDOWABLE False, replay per sample.
        low, high, state = self.m_low, self.m_high, self.m_state
        out = []
        for value in block.read(self.ip):
            if value >= high:
                state = True
            elif value <= low:
                state = False
            out.append(state)
        self.m_state = state
        block.write(self.op, out)
