"""Data converters: ADC and DAC library models.

The ADC reproduces the paper's interface bug verbatim: with the default
9-bit resolution, any input above ``2**9 = 512`` (mV) saturates to 512
at the output — the bug TC2 of the running example uncovers when the
expected ``T_LED`` data-flow associations are never exercised
(paper §IV-B3).

Both converters are *analyzable* library models (the paper's Table I
contains Strong pairs anchored at lines inside the ``adc`` model), but
their input-port uses anchor at the netlist bind sites
(``OPAQUE_USES``), matching the paper's PWeak pair
``(op_mux_out, 77, sense_top, 79, sense_top)``.
"""

from __future__ import annotations

from ..module import TdfModule
from ..ports import TdfIn, TdfOut


class AdcTdf(TdfModule):
    """An N-bit analog-to-digital converter.

    For ease of exposition (exactly like the paper's running example)
    the ADC outputs the same numeric value it receives, quantised to
    ``lsb`` and **saturated at the full-scale value ``2**bits * lsb``**.
    The default 9-bit/1 mV configuration saturates at 512.
    """

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, bits: int = 9, lsb: float = 1.0) -> None:
        super().__init__(name)
        if bits < 1:
            raise ValueError(f"ADC needs at least 1 bit, got {bits}")
        if lsb <= 0:
            raise ValueError(f"ADC lsb must be positive, got {lsb}")
        self.adc_i = TdfIn()
        self.adc_o = TdfOut()
        self.m_bits = int(bits)
        self.m_lsb = float(lsb)
        self.m_full_scale = (2 ** int(bits)) * float(lsb)

    def processing(self) -> None:
        vin = self.adc_i.read()
        code = round(vin / self.m_lsb) * self.m_lsb
        if code < 0:
            code = 0.0
        if code > self.m_full_scale:
            code = self.m_full_scale
        adc_out = code
        self.adc_o.write(adc_out)

    def processing_block(self, block) -> None:
        lsb, full_scale = self.m_lsb, self.m_full_scale
        out = []
        for vin in block.read(self.adc_i):
            code = round(vin / lsb) * lsb
            if code < 0:
                code = 0.0
            if code > full_scale:
                code = full_scale
            out.append(code)
        block.write(self.adc_o, out)


class DacTdf(TdfModule):
    """An N-bit digital-to-analog converter (code in, voltage out)."""

    OPAQUE_USES = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str, bits: int = 9, lsb: float = 1.0) -> None:
        super().__init__(name)
        if bits < 1:
            raise ValueError(f"DAC needs at least 1 bit, got {bits}")
        if lsb <= 0:
            raise ValueError(f"DAC lsb must be positive, got {lsb}")
        self.dac_i = TdfIn()
        self.dac_o = TdfOut()
        self.m_bits = int(bits)
        self.m_lsb = float(lsb)
        self.m_max_code = (2 ** int(bits)) - 1

    def processing(self) -> None:
        code = self.dac_i.read()
        clamped = min(max(code, 0), self.m_max_code)
        vout = clamped * self.m_lsb
        self.dac_o.write(vout)

    def processing_block(self, block) -> None:
        lsb, max_code = self.m_lsb, self.m_max_code
        block.write(
            self.dac_o,
            [min(max(code, 0), max_code) * lsb for code in block.read(self.dac_i)],
        )
