"""Stimulus sources.

:class:`StimulusSource` is the bridge between the testing layer and a
TDF cluster: it samples an arbitrary ``f(t_seconds) -> value`` callable
(usually a :class:`repro.testing.stimuli.Stimulus`) at its port
timestep.  The specialised sources below are convenience wrappers for
common waveforms used directly in examples and unit tests.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from ..module import TdfModule
from ..ports import TdfOut
from ..time import ScaTime


class StimulusSource(TdfModule):
    """Drives its output from a time-domain callable."""

    OPAQUE_USES = True
    TESTBENCH = True
    BLOCK_WINDOWABLE = True

    def __init__(
        self,
        name: str,
        waveform: Callable[[float], Any],
        timestep: Optional[ScaTime] = None,
    ) -> None:
        super().__init__(name)
        self.op = TdfOut()
        self.m_waveform = waveform
        self._timestep_request = timestep

    def set_attributes(self) -> None:
        if self._timestep_request is not None:
            self.set_timestep(self._timestep_request)

    def set_waveform(self, waveform: Callable[[float], Any]) -> None:
        """Swap the waveform (e.g. between testcases)."""
        self.m_waveform = waveform

    def processing(self) -> None:
        t = self.local_time().to_seconds()
        self.op.write(self.m_waveform(t))

    def processing_block(self, block) -> None:
        wf = self.m_waveform
        block.write(self.op, [wf(t) for t in block.times_seconds()])


class ConstantSource(StimulusSource):
    """Emits a constant value."""

    def __init__(self, name: str, value: Any, timestep: Optional[ScaTime] = None) -> None:
        super().__init__(name, lambda t: value, timestep)
        self.m_value = value


class SineSource(StimulusSource):
    """Emits ``offset + amplitude * sin(2*pi*freq*t + phase)``."""

    def __init__(
        self,
        name: str,
        amplitude: float = 1.0,
        frequency_hz: float = 1.0,
        offset: float = 0.0,
        phase: float = 0.0,
        timestep: Optional[ScaTime] = None,
    ) -> None:
        def waveform(t: float) -> float:
            return offset + amplitude * math.sin(2 * math.pi * frequency_hz * t + phase)

        super().__init__(name, waveform, timestep)


class StepSource(StimulusSource):
    """Steps from ``initial`` to ``final`` at ``step_time`` seconds."""

    def __init__(
        self,
        name: str,
        initial: float,
        final: float,
        step_time: float,
        timestep: Optional[ScaTime] = None,
    ) -> None:
        def waveform(t: float) -> float:
            return final if t >= step_time else initial

        super().__init__(name, waveform, timestep)


class RampSource(StimulusSource):
    """Linear ramp from ``start`` to ``stop`` over ``duration`` seconds,
    then held at ``stop``."""

    def __init__(
        self,
        name: str,
        start: float,
        stop: float,
        duration: float,
        timestep: Optional[ScaTime] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"ramp duration must be positive, got {duration}")

        def waveform(t: float) -> float:
            if t >= duration:
                return stop
            return start + (stop - start) * (t / duration)

        super().__init__(name, waveform, timestep)
