"""Sink library models: collectors, LEDs and null terminators."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..module import TdfModule
from ..ports import TdfIn
from ..time import ScaTime


class NullSink(TdfModule):
    """Consumes and discards its input (keeps the netlist fully bound)."""

    OPAQUE_USES = True
    TESTBENCH = True
    BLOCK_WINDOWABLE = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()

    def processing(self) -> None:
        self.ip.read()

    def processing_block(self, block) -> None:
        block.read(self.ip)


class CollectorSink(TdfModule):
    """Records every ``(time_seconds, value)`` sample it consumes."""

    OPAQUE_USES = True
    TESTBENCH = True

    def __init__(self, name: str, max_samples: Optional[int] = None) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.m_samples: List[Tuple[float, Any]] = []
        self.m_max_samples = max_samples

    def processing(self) -> None:
        value = self.ip.read()
        if self.m_max_samples is None or len(self.m_samples) < self.m_max_samples:
            self.m_samples.append((self.local_time().to_seconds(), value))

    def processing_block(self, block) -> None:
        values = block.read(self.ip)
        cap, samples = self.m_max_samples, self.m_samples
        for t, value in zip(block.times_seconds(), values):
            if cap is None or len(samples) < cap:
                samples.append((t, value))

    def values(self) -> List[Any]:
        """Just the recorded values, in sample order."""
        return [value for _, value in self.m_samples]

    def times(self) -> List[float]:
        """Sample times in seconds."""
        return [t for t, _ in self.m_samples]

    def clear(self) -> None:
        """Drop all recorded samples."""
        self.m_samples.clear()


class LedSink(TdfModule):
    """A light-emitting diode: latches on/off from a boolean-ish input.

    Records every state *change* with its time, so tests can assert both
    the final state and when the LED switched — the observable the
    paper's running example checks (``T_LED`` switching on above 60°C).
    """

    OPAQUE_USES = True
    TESTBENCH = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.m_state = False
        self.m_transitions: List[Tuple[float, bool]] = []

    def processing(self) -> None:
        new_state = bool(self.ip.read())
        if new_state != self.m_state:
            self.m_state = new_state
            self.m_transitions.append((self.local_time().to_seconds(), new_state))

    def processing_block(self, block) -> None:
        state, transitions = self.m_state, self.m_transitions
        times = None
        for k, value in enumerate(block.read(self.ip)):
            new_state = bool(value)
            if new_state != state:
                state = new_state
                if times is None:
                    times = block.times_seconds()
                transitions.append((times[k], new_state))
        self.m_state = state

    @property
    def is_on(self) -> bool:
        """Current LED state."""
        return self.m_state

    def ever_on(self) -> bool:
        """Whether the LED was switched on at any point."""
        return any(state for _, state in self.m_transitions) or self.m_state

    def clear(self) -> None:
        """Reset state and transition history."""
        self.m_state = False
        self.m_transitions.clear()
