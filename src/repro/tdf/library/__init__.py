"""Built-in TDF component library.

Mirrors the SystemC-AMS predefined module set the paper relies on:
redefining SISO elements (gain / delay / buffer), converters (ADC /
DAC), arithmetic and threshold blocks, muxes, filters, and the
source/sink models used by testbenches.
"""

from .arithmetic import (
    AdderTdf,
    ComparatorTdf,
    MultiplierTdf,
    OffsetTdf,
    SaturatorTdf,
    SchmittTriggerTdf,
    SubtractorTdf,
)
from .converters import AdcTdf, DacTdf
from .filters import (
    DifferentiatorTdf,
    FirFilterTdf,
    IirLowPassTdf,
    IntegratorTdf,
    MovingAverageTdf,
)
from .mux import AnalogDemuxTdf, AnalogMuxTdf
from .sinks import CollectorSink, LedSink, NullSink
from .siso import BufferTdf, DelayTdf, GainTdf
from .sources import (
    ConstantSource,
    RampSource,
    SineSource,
    StepSource,
    StimulusSource,
)

__all__ = [
    "AdderTdf",
    "AdcTdf",
    "AnalogDemuxTdf",
    "AnalogMuxTdf",
    "BufferTdf",
    "CollectorSink",
    "ComparatorTdf",
    "ConstantSource",
    "DacTdf",
    "DelayTdf",
    "DifferentiatorTdf",
    "FirFilterTdf",
    "GainTdf",
    "IirLowPassTdf",
    "IntegratorTdf",
    "LedSink",
    "MovingAverageTdf",
    "MultiplierTdf",
    "NullSink",
    "OffsetTdf",
    "RampSource",
    "SaturatorTdf",
    "SchmittTriggerTdf",
    "SineSource",
    "StepSource",
    "StimulusSource",
    "SubtractorTdf",
]
