"""TDF signals: single-driver, multi-reader token streams.

A :class:`Signal` connects exactly one output port (the *driver*) to any
number of input ports (the *readers*).  Tokens written to the signal are
identified by a monotonically increasing global index — index ``i`` is
the ``i``-th sample ever produced on the signal.  Every reader owns a
cursor into that stream; a reader whose input port declares a delay of
``d`` starts its cursor at ``-d`` and consumes ``d`` initial values
before it sees the first real token.

The global token index is the backbone of the dynamic data-flow
analysis: a *definition* event recorded at write time and a *use* event
recorded at read time are joined on ``(signal, token_index)``, which is
exact because the kernel is deterministic (see
:mod:`repro.instrument.matching`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from .errors import BindingError, SimulationError
from .time import ScaTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ports import TdfIn, TdfOut

#: Callback signature for write observers: (signal, token_index, value, time).
WriteObserver = Callable[["Signal", int, Any, Optional[ScaTime]], None]

#: Callback signature for read observers: (signal, reader_port, token_index, value).
ReadObserver = Callable[["Signal", "TdfIn", int, Any], None]


class Signal:
    """A timed token stream with one driver and many readers."""

    __slots__ = (
        "name",
        "initial_value",
        "driver",
        "readers",
        "_tokens",
        "_base_index",
        "_write_count",
        "_cursors",
        "_write_observers",
        "_read_observers",
        "_retain_from",
        "last_write_time",
    )

    def __init__(self, name: str, initial_value: Any = 0.0) -> None:
        self.name = name
        #: Value returned for delay tokens unless the reader overrides it.
        self.initial_value = initial_value
        self.driver: Optional["TdfOut"] = None
        self.readers: List["TdfIn"] = []
        # Token storage. ``_tokens[0]`` holds the token with global index
        # ``_base_index``; consumed tokens are dropped from the left.
        self._tokens: Deque[Any] = deque()
        self._base_index = 0
        self._write_count = 0
        # Per-reader cursor: global index of the next token the reader
        # will consume.  Negative cursors address initial (delay) values.
        self._cursors: Dict[int, int] = {}
        self._write_observers: List[WriteObserver] = []
        self._read_observers: List[ReadObserver] = []
        #: Garbage-collection floor: tokens at or above this global index
        #: are kept even after every reader consumed them.  Used by the
        #: batch engine's deferred trace capture, which reads committed
        #: tokens back out of the buffer at window end; ``None`` (the
        #: default) means no retention.
        self._retain_from: Optional[int] = None
        #: Timestamp of the most recent write (set by the simulator).
        self.last_write_time: Optional[ScaTime] = None

    # -- topology ---------------------------------------------------------

    def attach_driver(self, port: "TdfOut") -> None:
        """Register ``port`` as the signal's unique driver."""
        if self.driver is not None and self.driver is not port:
            raise BindingError(
                f"signal {self.name!r} already driven by "
                f"{self.driver.full_name()}; cannot also bind {port.full_name()}"
            )
        self.driver = port

    def attach_reader(self, port: "TdfIn") -> None:
        """Register ``port`` as one of the signal's readers."""
        if port not in self.readers:
            self.readers.append(port)
            self._cursors[id(port)] = 0

    def detach_all(self) -> None:
        """Remove every binding (used when rebuilding clusters in tests)."""
        self.driver = None
        self.readers.clear()
        self._cursors.clear()

    # -- observers --------------------------------------------------------

    def add_write_observer(self, callback: WriteObserver) -> None:
        """Invoke ``callback`` after every token written to this signal."""
        self._write_observers.append(callback)

    def add_read_observer(self, callback: ReadObserver) -> None:
        """Invoke ``callback`` after every token consumed from this signal."""
        self._read_observers.append(callback)

    def clear_observers(self) -> None:
        """Drop all registered observers."""
        self._write_observers.clear()
        self._read_observers.clear()

    # -- elaboration-time state -------------------------------------------

    def reset(self) -> None:
        """Reset token storage and cursors for a fresh simulation run."""
        self._tokens.clear()
        self._base_index = 0
        self._write_count = 0
        self.last_write_time = None
        for port in self.readers:
            self._cursors[id(port)] = -port.delay

    def prime_output_delay(self, count: int, values: Optional[List[Any]] = None) -> None:
        """Insert ``count`` initial tokens produced by an output-port delay.

        SystemC-AMS allows a delay on the *output* port, in which case
        the port emits ``count`` initial samples before the first
        computed one.  ``values`` overrides the per-token initial values
        (padded with :attr:`initial_value`).
        """
        for i in range(count):
            if values is not None and i < len(values):
                self._append(values[i], None)
            else:
                self._append(self.initial_value, None)

    # -- simulation-time API ------------------------------------------------

    @property
    def write_count(self) -> int:
        """Total number of tokens ever written (including delay priming)."""
        return self._write_count

    def tokens_consumed(self) -> int:
        """Tokens consumed so far, summed over all readers.

        Includes the delay/initial-value region (a reader that consumed
        its ``d`` initial tokens contributes ``d``).  Telemetry samples
        this before and after a run to derive per-signal read traffic.
        """
        return sum(
            self._cursors[id(port)] + port.delay for port in self.readers
        )

    def available(self, port: "TdfIn") -> int:
        """Number of tokens ``port`` could consume right now."""
        cursor = self._cursors[id(port)]
        return self._write_count - max(cursor, 0) + max(-cursor, 0)

    def write(self, value: Any, time: Optional[ScaTime] = None) -> int:
        """Append one token; returns its global index."""
        return self._append(value, time)

    def _append(self, value: Any, time: Optional[ScaTime]) -> int:
        index = self._write_count
        self._tokens.append(value)
        self._write_count += 1
        self.last_write_time = time
        for callback in self._write_observers:
            callback(self, index, value, time)
        return index

    def peek(self, port: "TdfIn", offset: int = 0) -> Any:
        """Return the token ``offset`` positions ahead of ``port``'s cursor
        without consuming it."""
        index = self._cursors[id(port)] + offset
        return self._value_at(index, port)

    def consume(self, port: "TdfIn", count: int) -> List[Any]:
        """Consume ``count`` tokens for ``port`` and return them in order.

        Fires the read observers once per token with the token's global
        index (delay/initial tokens have negative indices).
        """
        cursor = self._cursors[id(port)]
        values = []
        for i in range(count):
            index = cursor + i
            value = self._value_at(index, port)
            values.append(value)
            for callback in self._read_observers:
                callback(self, port, index, value)
        self._cursors[id(port)] = cursor + count
        self._collect_garbage()
        return values

    def _value_at(self, index: int, port: "TdfIn") -> Any:
        if index < 0:
            # Delay/initial value region.  A reader may carry its own
            # initial-value list (index -1 maps to the *last* element so
            # that values appear in write order).
            init = port.initial_values
            if init:
                mapped = len(init) + index
                if 0 <= mapped < len(init):
                    return init[mapped]
            return self.initial_value
        if index >= self._write_count:
            raise SimulationError(
                f"read past end of signal {self.name!r}: token {index} "
                f"requested but only {self._write_count} written "
                f"(reader {port.full_name()})"
            )
        offset = index - self._base_index
        if offset < 0:
            raise SimulationError(
                f"token {index} of signal {self.name!r} already discarded"
            )
        return self._tokens[offset]

    def _collect_garbage(self) -> None:
        """Drop tokens every reader has consumed to bound memory.

        Amortised: the min-cursor scan only runs once the retained
        backlog exceeds a small threshold, which keeps the per-sample
        cost constant without letting buffers grow unbounded.
        """
        if not self.readers:
            return
        if len(self._tokens) < 64:
            return
        min_cursor = min(self._cursors[id(p)] for p in self.readers)
        limit = min(min_cursor, self._write_count)
        if self._retain_from is not None and self._retain_from < limit:
            limit = self._retain_from
        drop = limit - self._base_index
        for _ in range(max(drop, 0)):
            self._tokens.popleft()
        if drop > 0:
            self._base_index += drop

    # -- debugging ----------------------------------------------------------

    def __repr__(self) -> str:
        driver = self.driver.full_name() if self.driver else None
        return (
            f"Signal({self.name!r}, driver={driver}, "
            f"readers={len(self.readers)}, written={self._write_count})"
        )
