"""Time representation for the TDF kernel.

SystemC represents time as an integer count of a global resolution unit
(by default one femtosecond) precisely so that repeated accumulation of
timesteps stays exact.  :class:`ScaTime` follows the same design: an
immutable integer number of femtoseconds with arithmetic, comparison and
pretty-printing, plus the usual unit constructors (:func:`fs` ...
:func:`sec`).

>>> ms(1) + us(500)
ScaTime('1.5 ms')
>>> (ms(1) / us(1))
1000.0
>>> ms(1) // us(250)
4
"""

from __future__ import annotations

import math
from functools import total_ordering
from typing import Union

#: Number of femtoseconds per unit, indexed by unit name.
_UNIT_FS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}

# Display order from coarsest to finest for __str__.
_DISPLAY_UNITS = ("s", "ms", "us", "ns", "ps", "fs")

Number = Union[int, float]


@total_ordering
class ScaTime:
    """An exact, immutable point/duration in simulated time.

    Internally an integer count of femtoseconds.  All arithmetic between
    two :class:`ScaTime` values is exact; multiplying and dividing by
    scalars rounds to the nearest femtosecond.
    """

    __slots__ = ("_fs",)

    def __init__(self, value: Number = 0, unit: str = "fs") -> None:
        if unit not in _UNIT_FS:
            raise ValueError(f"unknown time unit {unit!r}; expected one of {sorted(_UNIT_FS)}")
        if isinstance(value, float):
            if not math.isfinite(value):
                raise ValueError(f"time value must be finite, got {value!r}")
            self._fs = round(value * _UNIT_FS[unit])
        else:
            self._fs = int(value) * _UNIT_FS[unit]

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_femtoseconds(cls, fs_count: int) -> "ScaTime":
        """Build a time directly from an integer femtosecond count."""
        t = cls.__new__(cls)
        t._fs = int(fs_count)
        return t

    @classmethod
    def zero(cls) -> "ScaTime":
        """The zero time (additive identity)."""
        return cls.from_femtoseconds(0)

    # -- accessors ------------------------------------------------------

    @property
    def femtoseconds(self) -> int:
        """The exact integer femtosecond count."""
        return self._fs

    def to(self, unit: str) -> float:
        """Value expressed in ``unit`` as a float (may lose precision)."""
        if unit not in _UNIT_FS:
            raise ValueError(f"unknown time unit {unit!r}")
        return self._fs / _UNIT_FS[unit]

    def to_seconds(self) -> float:
        """Value in seconds as a float."""
        return self.to("s")

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other: "ScaTime") -> "ScaTime":
        if not isinstance(other, ScaTime):
            return NotImplemented
        return ScaTime.from_femtoseconds(self._fs + other._fs)

    def __sub__(self, other: "ScaTime") -> "ScaTime":
        if not isinstance(other, ScaTime):
            return NotImplemented
        return ScaTime.from_femtoseconds(self._fs - other._fs)

    def __mul__(self, factor: Number) -> "ScaTime":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ScaTime.from_femtoseconds(round(self._fs * factor))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["ScaTime", Number]):
        if isinstance(other, ScaTime):
            if other._fs == 0:
                raise ZeroDivisionError("division by zero time")
            return self._fs / other._fs
        if isinstance(other, (int, float)):
            if other == 0:
                raise ZeroDivisionError("division of time by zero")
            return ScaTime.from_femtoseconds(round(self._fs / other))
        return NotImplemented

    def __floordiv__(self, other: "ScaTime") -> int:
        if not isinstance(other, ScaTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("division by zero time")
        return self._fs // other._fs

    def __mod__(self, other: "ScaTime") -> "ScaTime":
        if not isinstance(other, ScaTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("modulo by zero time")
        return ScaTime.from_femtoseconds(self._fs % other._fs)

    def __neg__(self) -> "ScaTime":
        return ScaTime.from_femtoseconds(-self._fs)

    def __abs__(self) -> "ScaTime":
        return ScaTime.from_femtoseconds(abs(self._fs))

    def __bool__(self) -> bool:
        return self._fs != 0

    # -- comparisons ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScaTime):
            return NotImplemented
        return self._fs == other._fs

    def __lt__(self, other: "ScaTime") -> bool:
        if not isinstance(other, ScaTime):
            return NotImplemented
        return self._fs < other._fs

    def __hash__(self) -> int:
        return hash(("ScaTime", self._fs))

    # -- formatting -----------------------------------------------------

    def __str__(self) -> str:
        if self._fs == 0:
            return "0 s"
        magnitude = abs(self._fs)
        for unit in _DISPLAY_UNITS:
            if magnitude >= _UNIT_FS[unit]:
                value = self._fs / _UNIT_FS[unit]
                # Trim trailing zeros while keeping exactness where possible.
                if self._fs % _UNIT_FS[unit] == 0:
                    return f"{self._fs // _UNIT_FS[unit]} {unit}"
                return f"{value:g} {unit}"
        return f"{self._fs} fs"

    def __repr__(self) -> str:
        return f"ScaTime({str(self)!r})"


def fs(value: Number) -> ScaTime:
    """``value`` femtoseconds."""
    return ScaTime(value, "fs")


def ps(value: Number) -> ScaTime:
    """``value`` picoseconds."""
    return ScaTime(value, "ps")


def ns(value: Number) -> ScaTime:
    """``value`` nanoseconds."""
    return ScaTime(value, "ns")


def us(value: Number) -> ScaTime:
    """``value`` microseconds."""
    return ScaTime(value, "us")


def ms(value: Number) -> ScaTime:
    """``value`` milliseconds."""
    return ScaTime(value, "ms")


def sec(value: Number) -> ScaTime:
    """``value`` seconds."""
    return ScaTime(value, "s")


def gcd_time(a: ScaTime, b: ScaTime) -> ScaTime:
    """Greatest common divisor of two times (exact, femtosecond-based)."""
    return ScaTime.from_femtoseconds(math.gcd(a.femtoseconds, b.femtoseconds))


def lcm_time(a: ScaTime, b: ScaTime) -> ScaTime:
    """Least common multiple of two times (exact, femtosecond-based)."""
    return ScaTime.from_femtoseconds(math.lcm(a.femtoseconds, b.femtoseconds))
