"""A Timed Data Flow (TDF) model-of-computation kernel.

This package is the Python substrate standing in for SystemC-AMS's TDF
MoC (see DESIGN.md, "Substitutions"): modules with the
``set_attributes / initialize / processing / change_attributes``
lifecycle, rated and delayed ports, single-driver signals, cluster
elaboration with exact SDF scheduling, a timed simulator with dynamic
TDF support, and a library of predefined components.

Quick example::

    from repro.tdf import Cluster, Simulator, TdfModule, TdfIn, TdfOut, ms
    from repro.tdf.library import ConstantSource, CollectorSink

    class Doubler(TdfModule):
        def processing(self):
            self.op.write(self.ip.read() * 2)
        def __init__(self, name):
            super().__init__(name)
            self.ip = TdfIn()
            self.op = TdfOut()

    class Top(Cluster):
        def architecture(self):
            self.src = self.add(ConstantSource("src", 21.0, timestep=ms(1)))
            self.dbl = self.add(Doubler("dbl"))
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.dbl.ip)
            self.connect(self.dbl.op, self.sink.ip)

    top = Top("top")
    Simulator(top).run(ms(5))
    assert top.sink.values() == [42.0] * 5
"""

from .cluster import Cluster
from .errors import (
    BindingError,
    DynamicTdfError,
    ElaborationError,
    PortAccessError,
    RateConsistencyError,
    SchedulingDeadlockError,
    SimulationError,
    TdfError,
    TimestepError,
)
from .module import TdfModule
from .ports import BindSite, Port, TdfIn, TdfOut
from .scheduler import Schedule, elaborate
from .signal import Signal
from .simulator import Simulator
from .time import ScaTime, fs, gcd_time, lcm_time, ms, ns, ps, sec, us
from .trace import Tracer

__all__ = [
    "BindSite",
    "BindingError",
    "Cluster",
    "DynamicTdfError",
    "ElaborationError",
    "Port",
    "PortAccessError",
    "RateConsistencyError",
    "ScaTime",
    "Schedule",
    "SchedulingDeadlockError",
    "Signal",
    "SimulationError",
    "Simulator",
    "TdfError",
    "TdfIn",
    "TdfModule",
    "TdfOut",
    "TimestepError",
    "Tracer",
    "elaborate",
    "fs",
    "gcd_time",
    "lcm_time",
    "ms",
    "ns",
    "ps",
    "sec",
    "us",
]
