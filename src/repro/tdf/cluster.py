"""TDF clusters: module containers, signals and netlist construction.

A :class:`Cluster` owns a set of TDF modules and the signals connecting
them.  Subclasses typically build their netlist in an
:meth:`Cluster.architecture` override — mirroring the paper's
``sense_top::architecture()`` netlist function (Fig. 2, lines 70-82) —
which the constructor invokes automatically::

    class SenseTop(Cluster):
        def architecture(self):
            self.ts = self.add(TS("ts"))
            ...
            self.connect(self.ts.op_signal_out, self.delay.ip)

Binding can be done either with explicit signals (``port.bind(sig)``)
or with the :meth:`connect` convenience.  Either way, each port records
the source location of its bind call; those *bind sites* anchor the
cluster-level data-flow associations of opaque library components
(paper §V).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, TypeVar

from .errors import BindingError, ElaborationError
from .module import TdfModule
from .ports import Port, TdfIn, TdfOut
from .signal import Signal

M = TypeVar("M", bound=TdfModule)


class Cluster:
    """A connected set of TDF modules (the unit of static scheduling)."""

    def __init__(self, name: str, autobuild: bool = True) -> None:
        self.name = name
        self._modules: Dict[str, TdfModule] = {}
        self._signals: Dict[str, Signal] = {}
        self._signal_counter = 0
        if autobuild:
            self.architecture()

    # -- netlist construction (override in subclasses) -------------------------

    def architecture(self) -> None:
        """Build modules and bindings.  Default: empty cluster."""

    # -- modules ----------------------------------------------------------------

    def add(self, module: M) -> M:
        """Register ``module`` with the cluster and return it."""
        if module.name in self._modules:
            raise ElaborationError(
                f"cluster {self.name!r} already contains a module named "
                f"{module.name!r}"
            )
        self._modules[module.name] = module
        module.cluster = self
        return module

    @property
    def modules(self) -> List[TdfModule]:
        """All registered modules in registration order."""
        return list(self._modules.values())

    def module(self, name: str) -> TdfModule:
        """Look up a module by name."""
        try:
            return self._modules[name]
        except KeyError:
            raise ElaborationError(
                f"cluster {self.name!r} has no module {name!r}"
            ) from None

    # -- signals ----------------------------------------------------------------

    def signal(self, name: Optional[str] = None, initial_value: float = 0.0) -> Signal:
        """Create (or fetch) a named signal."""
        if name is None:
            self._signal_counter += 1
            name = f"sig_{self._signal_counter}"
        if name in self._signals:
            return self._signals[name]
        sig = Signal(name, initial_value)
        self._signals[name] = sig
        return sig

    @property
    def signals(self) -> List[Signal]:
        """All signals in creation order."""
        return list(self._signals.values())

    def connect(
        self,
        source: TdfOut,
        *sinks: TdfIn,
        name: Optional[str] = None,
        initial_value: float = 0.0,
    ) -> Signal:
        """Bind ``source`` and each of ``sinks`` to one (new) signal.

        The signal is named after the source port unless ``name`` is
        given.  Returns the signal so callers can attach more readers
        later.
        """
        if not isinstance(source, TdfOut):
            raise BindingError(
                f"connect() source must be an output port, got {source!r}"
            )
        if source.signal is not None:
            sig = source.signal
        else:
            sig = self.signal(name or f"{source.full_name()}_sig", initial_value)
            source.bind(sig)
        for sink in sinks:
            if not isinstance(sink, TdfIn):
                raise BindingError(
                    f"connect() sinks must be input ports, got {sink!r}"
                )
            sink.bind(sig)
        return sig

    # -- netlist queries (used by the analysis layer) ------------------------------

    def bindings(self) -> Iterator[Tuple[Signal, TdfOut, List[TdfIn]]]:
        """Yield ``(signal, driver, readers)`` for every bound signal."""
        for sig in self._signals.values():
            if sig.driver is not None or sig.readers:
                yield sig, sig.driver, list(sig.readers)

    def readers_of(self, port: TdfOut) -> List[TdfIn]:
        """Input ports fed (directly) by ``port``."""
        if port.signal is None:
            return []
        return list(port.signal.readers)

    def driver_of(self, port: TdfIn) -> Optional[TdfOut]:
        """The output port driving ``port``, if any."""
        if port.signal is None:
            return None
        return port.signal.driver

    def check_bindings(self) -> None:
        """Validate the netlist: every port bound, every signal driven.

        An input port bound to a driverless signal is reported — this is
        the paper's "use of ports without definitions" undefined
        behaviour — but only as part of the returned diagnostics of
        :meth:`undriven_inputs`; elaboration tolerates it so that the
        dynamic analysis can observe and warn about it at runtime.
        """
        for module in self._modules.values():
            for port in module.ports():
                if not port.bound:
                    raise BindingError(
                        f"port {port.full_name()} of cluster {self.name!r} "
                        f"is not bound to any signal"
                    )

    def undriven_inputs(self) -> List[TdfIn]:
        """Input ports whose signal has no driver (undefined behaviour)."""
        result = []
        for module in self._modules.values():
            for port in module.in_ports():
                if port.signal is not None and port.signal.driver is None:
                    result.append(port)
        return result

    def reset_signals(self) -> None:
        """Reset all token buffers for a fresh simulation run."""
        for sig in self._signals.values():
            sig.reset()
        for module in self._modules.values():
            for port in module.out_ports():
                port._reset()
            module.activation_count = 0

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, modules={len(self._modules)}, "
            f"signals={len(self._signals)})"
        )
