"""TDF module base class.

A TDF module is the unit of behaviour in a TDF cluster, mirroring
``sca_tdf::sca_module``:

* ``set_attributes()`` — declare port rates/delays and timesteps;
* ``initialize()`` — set initial values after elaboration;
* ``processing()`` — the per-activation behaviour (the subject of the
  paper's data-flow analysis);
* ``change_attributes()`` — dynamic TDF: invoked once per cluster
  period, may request a new timestep/rate which takes effect at the
  next period boundary after re-elaboration.

Ports are declared as plain attribute assignments::

    class Gain(TdfModule):
        def __init__(self, name, k):
            super().__init__(name)
            self.ip = TdfIn()
            self.op = TdfOut()
            self.m_k = k

        def processing(self):
            self.op.write(self.ip.read() * self.m_k)

The module's ``__setattr__`` captures :class:`~repro.tdf.ports.Port`
instances and names them after the attribute, so the static analysis
can refer to ports by the same identifiers that appear in the source.

Class-level flags consumed by the analysis layer:

``REDEFINING``
    The module is a single-input single-output library element that
    *redefines* the signal flowing through it (gain, delay, buffer).
    Paper §IV-B: data flowing through such an element counts as
    redefined, which drives the PFirm/PWeak classification.
``OPAQUE_USES``
    Input-port uses of this module are anchored at the netlist bind
    site instead of inside its source (library components whose source
    the user did not write).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .errors import DynamicTdfError, TdfError
from .ports import Port, TdfIn, TdfOut
from .time import ScaTime


class TdfModule:
    """Base class for all TDF modules."""

    #: See module docstring.
    REDEFINING = False
    #: See module docstring.
    OPAQUE_USES = False
    #: Testbench modules (stimulus sources, monitors, LEDs) sit outside
    #: the design under verification: the static analysis skips them, so
    #: DUV input ports they drive keep their placeholder definition at
    #: the model start (paper §V) and DUV outputs they consume produce
    #: no use anchors.
    TESTBENCH = False
    #: Whether the module accepts dynamic attribute changes at runtime.
    ACCEPT_ATTRIBUTE_CHANGES = True
    #: Block-engine hint: the module is stateless across firings (its
    #: output samples depend only on its input samples and declared
    #: attributes), so the compiled engine may hoist its firings across
    #: period boundaries inside an execution window.  Stateful modules
    #: (filters, triggers) must leave this False; they still block-fire,
    #: but only within a single period.
    BLOCK_WINDOWABLE = False

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise TdfError(f"module name must be a non-empty string, got {name!r}")
        # Assign via object.__setattr__ so port capture below can rely on
        # self._ports existing.
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_ports", {})
        self._processing_fn: Optional[Callable[[], None]] = None
        self.activation_count = 0
        self._time: ScaTime = ScaTime.zero()
        self._module_timestep_request: Optional[ScaTime] = None
        self.timestep: Optional[ScaTime] = None
        self._pending_timestep: Optional[ScaTime] = None
        self._pending_rates: Dict[str, int] = {}
        self.cluster = None  # set at registration

    # -- port capture ---------------------------------------------------------

    def __setattr__(self, key: str, value: Any) -> None:
        if isinstance(value, Port):
            value.name = value.name or key
            value.module = self
            self._ports[key] = value
        object.__setattr__(self, key, value)

    def ports(self) -> Iterator[Port]:
        """All ports in declaration order."""
        return iter(self._ports.values())

    def in_ports(self) -> List[TdfIn]:
        """All input ports in declaration order.

        Cached after first call: ports are declared in ``__init__`` and
        the set never changes afterwards.
        """
        cached = self.__dict__.get("_in_ports_cache")
        if cached is None or len(cached[1]) != len(self._ports):
            ins = [p for p in self._ports.values() if isinstance(p, TdfIn)]
            object.__setattr__(self, "_in_ports_cache", (ins, dict(self._ports)))
            return ins
        return cached[0]

    def out_ports(self) -> List[TdfOut]:
        """All output ports in declaration order (cached like in_ports)."""
        cached = self.__dict__.get("_out_ports_cache")
        if cached is None or len(cached[1]) != len(self._ports):
            outs = [p for p in self._ports.values() if isinstance(p, TdfOut)]
            object.__setattr__(self, "_out_ports_cache", (outs, dict(self._ports)))
            return outs
        return cached[0]

    def port(self, name: str) -> Port:
        """Look up a port by attribute name."""
        try:
            return self._ports[name]
        except KeyError:
            raise TdfError(f"module {self.name!r} has no port {name!r}") from None

    # -- lifecycle callbacks (override in subclasses) ---------------------------

    def set_attributes(self) -> None:
        """Declare rates, delays and timesteps.  Default: single-rate."""

    def initialize(self) -> None:
        """Initialise state after elaboration, before the first activation."""

    def processing(self) -> None:
        """Per-activation behaviour; must be overridden (or registered)."""
        raise NotImplementedError(
            f"module {self.name!r} defines no processing() and registered none"
        )

    def change_attributes(self) -> None:
        """Dynamic TDF hook, called once per cluster period."""

    def processing_block(self, block) -> None:
        """Block-mode behaviour: process ``block.n`` firings in one call.

        Overriding this method declares the module *block-capable*: the
        compiled execution engine (:mod:`repro.tdf.engine`) may replace
        ``block.n`` consecutive per-sample activations with a single
        call, passing a :class:`~repro.tdf.engine.blocks.FiringBlock`
        that exposes whole sample blocks (``block.read(port)`` returns a
        list of ``block.n`` samples, ``block.write(port, values)``
        expects exactly ``block.n``).  Implementations must produce
        bit-identical samples and leave module state exactly as ``n``
        sequential :meth:`processing` calls would.  The base class does
        not implement it; the engine falls back to interpreted firing.
        """
        raise NotImplementedError(
            f"module {self.name!r} does not implement processing_block()"
        )

    def end_of_simulation(self) -> None:
        """Called once when the simulation finishes."""

    # -- register_processing (paper §V) -----------------------------------------

    def register_processing(self, fn: Callable[[], None]) -> None:
        """Use ``fn`` as the processing callback instead of ``processing()``.

        Mirrors SystemC-AMS's ``register_processing``; the static
        analysis resolves the registered callable when extracting the
        model's source (see
        :meth:`repro.analysis.model_analysis.resolve_processing`).
        """
        if not callable(fn):
            raise TdfError(f"register_processing expects a callable, got {fn!r}")
        self._processing_fn = fn

    def resolved_processing(self) -> Callable[[], None]:
        """The callable actually executed per activation."""
        return self._processing_fn if self._processing_fn is not None else self.processing

    # -- attribute requests -------------------------------------------------------

    def set_timestep(self, timestep: ScaTime) -> None:
        """Assign the module timestep (legal inside ``set_attributes``)."""
        if not isinstance(timestep, ScaTime) or timestep.femtoseconds <= 0:
            raise TdfError(
                f"module timestep must be a positive ScaTime, got {timestep!r}"
            )
        self._module_timestep_request = timestep

    @property
    def requested_timestep(self) -> Optional[ScaTime]:
        """Timestep assigned via :meth:`set_timestep` (None = derived)."""
        return self._module_timestep_request

    # -- dynamic TDF ----------------------------------------------------------------

    def request_timestep(self, timestep: ScaTime) -> None:
        """Request a new module timestep (dynamic TDF).

        Legal inside ``processing()`` or ``change_attributes()``; takes
        effect at the next cluster-period boundary, after the kernel
        re-runs elaboration.
        """
        if not self.ACCEPT_ATTRIBUTE_CHANGES:
            raise DynamicTdfError(
                f"module {self.name!r} does not accept attribute changes"
            )
        if not isinstance(timestep, ScaTime) or timestep.femtoseconds <= 0:
            raise DynamicTdfError(
                f"requested timestep must be a positive ScaTime, got {timestep!r}"
            )
        self._pending_timestep = timestep

    def request_rate(self, port_name: str, rate: int) -> None:
        """Request a new rate for ``port_name`` (dynamic TDF)."""
        if not self.ACCEPT_ATTRIBUTE_CHANGES:
            raise DynamicTdfError(
                f"module {self.name!r} does not accept attribute changes"
            )
        if port_name not in self._ports:
            raise DynamicTdfError(f"module {self.name!r} has no port {port_name!r}")
        if not isinstance(rate, int) or rate < 1:
            raise DynamicTdfError(f"requested rate must be a positive int, got {rate!r}")
        self._pending_rates[port_name] = rate

    def consume_attribute_requests(self) -> bool:
        """Apply pending dynamic-TDF requests; returns True if any applied."""
        changed = False
        if self._pending_timestep is not None:
            self._module_timestep_request = self._pending_timestep
            self._pending_timestep = None
            changed = True
        for port_name, rate in self._pending_rates.items():
            self._ports[port_name].set_rate(rate)
            changed = True
        self._pending_rates.clear()
        return changed

    @property
    def has_pending_attribute_requests(self) -> bool:
        """Whether a dynamic-TDF request is waiting for the period boundary."""
        return self._pending_timestep is not None or bool(self._pending_rates)

    # -- simulation-time helpers -----------------------------------------------------

    @property
    def time(self) -> ScaTime:
        """Time of the current activation's first sample."""
        return self._time

    def local_time(self, sample: int = 0) -> ScaTime:
        """Time of sample ``sample`` of the current activation."""
        if self.timestep is None:
            return self._time
        return self._time + self.timestep * sample

    # -- kernel hooks -----------------------------------------------------------------

    def _activate(self, time: ScaTime) -> None:
        """Run one activation at ``time`` (kernel use only).

        Bypasses :meth:`__setattr__` (its port-capture check is pure
        overhead for plain state) and resolves the port lists once per
        activation instead of once per loop.
        """
        object.__setattr__(self, "_time", time)
        ins = self.in_ports()
        outs = self.out_ports()
        for port in ins:
            port._begin_activation()
        for port in outs:
            port._begin_activation(time)
        try:
            self.resolved_processing()()
        finally:
            for port in ins:
                port._end_activation()
            for port in outs:
                port._end_activation()
        object.__setattr__(self, "activation_count", self.activation_count + 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
