"""TDF ports.

Ports are the interface between a TDF module's ``processing()`` callback
and the token streams (:class:`~repro.tdf.signal.Signal`) of the
cluster.  Following the SystemC-AMS TDF port semantics:

* an input port with *rate* ``R`` delivers ``R`` samples per module
  activation, addressed as ``port.read(0) .. port.read(R - 1)``;
* an output port with rate ``R`` accepts ``R`` samples per activation
  via ``port.write(value, i)``; samples never written default to the
  signal's initial value;
* a *delay* of ``d`` on an input port makes the reader consume ``d``
  initial values before the first real token (breaking feedback loops);
  a delay on an output port emits ``d`` initial samples ahead of the
  first computed one;
* a *timestep* may be assigned to a port (or to the whole module); the
  elaboration propagates timesteps through the cluster and checks
  consistency (see :mod:`repro.tdf.scheduler`).

Every ``bind()`` call records the source location of the call site.
These *bind sites* are the netlist anchors used by the static data-flow
analysis to attribute definitions/uses that happen inside opaque library
components (paper §V, "Binding Info. Extraction").
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

from .errors import BindingError, PortAccessError
from .signal import Signal
from .time import ScaTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .module import TdfModule

#: Hook fired on every ``TdfOut.write`` call:
#: ``(port, global_token_index, value, sample_index)``.
WriteHook = Callable[["TdfOut", int, Any, int], None]

#: Hook fired on every ``TdfIn.read`` call:
#: ``(port, global_token_index, value, sample_offset)``.
ReadHook = Callable[["TdfIn", int, Any, int], None]


class BindSite:
    """Source location of a ``bind()`` call (the netlist anchor)."""

    __slots__ = ("filename", "lineno", "function")

    def __init__(self, filename: str, lineno: int, function: str) -> None:
        self.filename = filename
        self.lineno = lineno
        self.function = function

    def __repr__(self) -> str:
        return f"BindSite({self.filename}:{self.lineno} in {self.function})"


#: Directory of this package; frames inside it are kernel-internal and
#: skipped when locating the user's bind statement.
import os as _os

_KERNEL_DIR = _os.path.dirname(_os.path.abspath(__file__))


def _capture_bind_site() -> Optional[BindSite]:
    """Record the file/line of the nearest caller outside the kernel.

    ``bind()`` may be reached directly from user netlist code or through
    convenience wrappers like :meth:`repro.tdf.cluster.Cluster.connect`;
    either way the *user's* statement is the anchor the analysis needs,
    so internal frames are skipped.
    """
    frame = inspect.currentframe()
    try:
        while frame is not None:
            filename = frame.f_code.co_filename
            if not _os.path.abspath(filename).startswith(_KERNEL_DIR):
                return BindSite(filename, frame.f_lineno, frame.f_code.co_name)
            frame = frame.f_back
        return None
    finally:
        del frame


class Port:
    """Common state shared by input and output TDF ports."""

    __slots__ = (
        "name",
        "module",
        "signal",
        "rate",
        "delay",
        "initial_values",
        "requested_timestep",
        "timestep",
        "bind_site",
    )

    direction = "?"

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.module: Optional["TdfModule"] = None
        self.signal: Optional[Signal] = None
        self.rate = 1
        self.delay = 0
        #: Per-port initial values consumed during the delay phase.
        self.initial_values: List[Any] = []
        #: Timestep requested via :meth:`set_timestep` (None = derived).
        self.requested_timestep: Optional[ScaTime] = None
        #: Timestep derived by elaboration.
        self.timestep: Optional[ScaTime] = None
        self.bind_site: Optional[BindSite] = None

    # -- attribute setters (legal inside ``set_attributes``) ---------------

    def set_rate(self, rate: int) -> None:
        """Declare how many samples this port produces/consumes per
        module activation."""
        if not isinstance(rate, int) or rate < 1:
            raise PortAccessError(f"port rate must be a positive int, got {rate!r}")
        self.rate = rate

    def set_delay(self, delay: int) -> None:
        """Declare the number of initial (delay) samples on this port."""
        if not isinstance(delay, int) or delay < 0:
            raise PortAccessError(f"port delay must be a non-negative int, got {delay!r}")
        self.delay = delay

    def set_timestep(self, timestep: ScaTime) -> None:
        """Pin the sample period of this port."""
        if not isinstance(timestep, ScaTime) or timestep.femtoseconds <= 0:
            raise PortAccessError(f"port timestep must be a positive ScaTime, got {timestep!r}")
        self.requested_timestep = timestep

    def set_initial_value(self, value: Any) -> None:
        """Set the value returned for all delay samples of this port."""
        self.initial_values = [value] * max(self.delay, 1)

    def set_initial_values(self, values: List[Any]) -> None:
        """Set per-sample delay values (in production order)."""
        self.initial_values = list(values)

    # -- binding -----------------------------------------------------------

    def bind(self, signal: Signal) -> None:
        """Connect this port to ``signal``; records the call site."""
        if self.signal is not None and self.signal is not signal:
            raise BindingError(
                f"port {self.full_name()} already bound to signal "
                f"{self.signal.name!r}"
            )
        self.signal = signal
        self.bind_site = _capture_bind_site()
        self._attach(signal)

    def _attach(self, signal: Signal) -> None:
        raise NotImplementedError

    @property
    def bound(self) -> bool:
        """Whether the port has been bound to a signal."""
        return self.signal is not None

    def full_name(self) -> str:
        """Hierarchical ``module.port`` name."""
        owner = self.module.name if self.module is not None else "<unbound>"
        return f"{owner}.{self.name or '<anon>'}"

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.full_name()}, rate={self.rate}, "
            f"delay={self.delay})"
        )


class TdfIn(Port):
    """TDF input port (``sca_tdf::sca_in`` analogue)."""

    __slots__ = ("_read_hooks", "_in_activation")

    direction = "in"

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._read_hooks: List[ReadHook] = []
        self._in_activation = False

    def _attach(self, signal: Signal) -> None:
        signal.attach_reader(self)

    def add_read_hook(self, hook: ReadHook) -> None:
        """Fire ``hook`` on every :meth:`read` call."""
        self._read_hooks.append(hook)

    def clear_hooks(self) -> None:
        """Remove all read hooks."""
        self._read_hooks.clear()

    # -- kernel interface ---------------------------------------------------

    def _begin_activation(self) -> None:
        self._in_activation = True

    def _end_activation(self) -> None:
        """Advance past this activation's samples without firing hooks."""
        self._in_activation = False
        assert self.signal is not None
        self.signal._cursors[id(self)] += self.rate
        self.signal._collect_garbage()

    def global_index(self, offset: int = 0) -> int:
        """Global token index of sample ``offset`` of the current activation."""
        assert self.signal is not None
        return self.signal._cursors[id(self)] + offset

    # -- user interface -------------------------------------------------------

    def read(self, offset: int = 0) -> Any:
        """Read sample ``offset`` (``0 .. rate-1``) of the current activation.

        Reading is non-destructive within the activation: the same
        sample may be read any number of times, and each read fires the
        read hooks (each read is a distinct *use* for data-flow
        purposes).
        """
        if self.signal is None:
            raise PortAccessError(f"read from unbound port {self.full_name()}")
        if not self._in_activation:
            raise PortAccessError(
                f"port {self.full_name()} read outside of processing()"
            )
        if not 0 <= offset < self.rate:
            raise PortAccessError(
                f"sample offset {offset} out of range for port "
                f"{self.full_name()} with rate {self.rate}"
            )
        index = self.global_index(offset)
        if self.signal.driver is None:
            # Undriven signal: undefined behaviour per the SystemC-AMS
            # standard.  The kernel yields the signal's initial value so
            # the simulation proceeds; the dynamic analysis observes the
            # read (hooks below) and reports a use-without-def warning.
            value = self.signal.initial_value
        else:
            value = self.signal._value_at(index, self)
        for hook in self._read_hooks:
            hook(self, index, value, offset)
        return value

    def __call__(self, offset: int = 0) -> Any:
        """Alias for :meth:`read` (matches ``port.read()`` shorthand)."""
        return self.read(offset)


class TdfOut(Port):
    """TDF output port (``sca_tdf::sca_out`` analogue)."""

    __slots__ = (
        "_write_hooks",
        "_pending",
        "_flushed",
        "_in_activation",
        "_activation_time",
        "_last_value",
    )

    direction = "out"

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._write_hooks: List[WriteHook] = []
        self._pending: List[Tuple[int, Any]] = []
        self._flushed = 0
        self._in_activation = False
        self._activation_time: Optional[ScaTime] = None
        self._last_value: Any = None

    def _attach(self, signal: Signal) -> None:
        signal.attach_driver(self)

    def add_write_hook(self, hook: WriteHook) -> None:
        """Fire ``hook`` on every :meth:`write` call."""
        self._write_hooks.append(hook)

    def clear_hooks(self) -> None:
        """Remove all write hooks."""
        self._write_hooks.clear()

    # -- kernel interface ---------------------------------------------------

    def _reset(self) -> None:
        self._pending.clear()
        self._flushed = 0
        if self.signal is not None:
            self._last_value = self.signal.initial_value
            if self.delay > 0:
                self.signal.prime_output_delay(self.delay, self.initial_values)
                self._flushed = self.delay
                if self.initial_values:
                    self._last_value = self.initial_values[-1]

    def _begin_activation(self, time: Optional[ScaTime] = None) -> None:
        self._in_activation = True
        self._activation_time = time
        self._pending.clear()

    def _end_activation(self) -> None:
        """Flush this activation's samples to the signal in index order.

        Samples the module did not write repeat the most recent written
        value (sample-and-hold) — this is what lets a TDF model "halt"
        its output by skipping the write, as the paper's temperature
        sensor does while held (Fig. 2, line 7).
        """
        self._in_activation = False
        assert self.signal is not None
        signal = self.signal
        # Sample timestamps are only needed when someone observes the
        # signal (tracers); skip the ScaTime arithmetic otherwise.
        want_times = bool(signal._write_observers)
        pending = self._pending
        if self.rate == 1 and not want_times:
            # Dominant case (single-rate port, no tracers): skip the
            # dict round-trip; the last write for offset 0 wins.
            if pending:
                self._last_value = pending[-1][1]
                pending.clear()
            signal.write(self._last_value, None)
            self._flushed += 1
            return
        values = {i: v for i, v in pending}
        for i in range(self.rate):
            value = values.get(i, self._last_value)
            self._last_value = value
            sample_time = self._sample_time(i) if want_times else None
            signal.write(value, sample_time)
        self._flushed += self.rate
        pending.clear()

    def _sample_time(self, offset: int) -> Optional[ScaTime]:
        if self._activation_time is None or self.timestep is None:
            return self._activation_time
        return self._activation_time + self.timestep * offset

    # -- user interface -------------------------------------------------------

    def write(self, value: Any, offset: int = 0) -> int:
        """Write sample ``offset`` of the current activation.

        Returns the global token index the sample will occupy.  Writing
        the same offset twice overwrites the earlier value, but each
        call still fires the write hooks (each write statement executed
        is a distinct *definition* for data-flow purposes).
        """
        if self.signal is None:
            raise PortAccessError(f"write to unbound port {self.full_name()}")
        if not self._in_activation:
            raise PortAccessError(
                f"port {self.full_name()} written outside of processing()"
            )
        if not 0 <= offset < self.rate:
            raise PortAccessError(
                f"sample offset {offset} out of range for port "
                f"{self.full_name()} with rate {self.rate}"
            )
        index = self._flushed + offset
        self._pending.append((offset, value))
        for hook in self._write_hooks:
            hook(self, index, value, offset)
        return index
