"""The shard-execution worker daemon.

A worker is the remote half of the
:class:`~repro.exec.base.DynamicExecutor` contract: it listens on a
TCP port, accepts ``run_shard`` requests (see
:mod:`repro.service.protocol`) and executes each shard with the
ordinary serial :class:`~repro.instrument.runner.DynamicAnalyzer` on
clusters and suites rebuilt from importable references — exactly what
:mod:`repro.exec.process` workers do in-process, stretched across a
host boundary.

Two properties make the fleet scale:

* **Content-addressed memoization.**  Every shard request carries the
  static fingerprint of the design; the worker keeps one process-level
  :class:`~repro.exec.cache.DynamicResultCache` keyed by
  ``(fingerprint, testcase name)``, so a re-dispatched or repeated
  shard answers from memory without re-simulating — and without any
  traces ever crossing the wire.
* **Serialized execution.**  Shards run on a single executor thread
  (simulation is CPU-bound; a worker process is the unit of
  parallelism), so concurrent dispatches queue instead of thrashing.

``repro-dft worker`` runs :func:`serve_worker`; tests embed
:class:`WorkerServer` in a background thread via
:meth:`WorkerServer.start_in_thread`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..exec.cache import DynamicResultCache
from ..exec.refs import resolve_ref
from ..obs import Telemetry, get_telemetry, telemetry_session
from .protocol import (
    ROLE,
    ProtocolError,
    encode_match,
    read_message,
    write_message,
)


class _ShardStatic:
    """The slice of the static result the dynamic matcher needs —
    the remote twin of :class:`repro.exec.process._WorkerStatic`."""

    def __init__(self, model_start_lines: Dict[str, int]) -> None:
        self.model_start_lines = model_start_lines


def execute_shard(
    job: Dict[str, Any], cache: Optional[DynamicResultCache] = None
) -> Dict[str, Any]:
    """Run one shard job and return the JSON-ready response body.

    ``job`` fields (the ``run_shard`` request's ``job`` object):

    ``factory_ref`` / ``factory_args``
        Importable cluster-factory reference (+ positional args for
        parameterised factories, e.g. the seeded random cluster).
    ``suite_ref`` / ``suite_args``
        Importable suite-builder reference; every name in ``names``
        must be rebuildable from it.
    ``names``
        The testcase names of this shard, in shard order.
    ``model_start_lines``
        ``{model: def-line}`` placeholder map from the parent's static
        analysis.
    ``fingerprint``
        Content-address of the design (static fingerprint); the memo
        key prefix for the worker-local result cache.
    ``warn`` / ``engine`` / ``matcher`` / ``batch_size`` /
    ``record_telemetry``
        The usual execution knobs (see
        :meth:`repro.exec.base.DynamicExecutor.run_suite`).
    """
    from ..instrument.runner import DynamicAnalyzer

    t0 = time.perf_counter()
    names: List[str] = list(job.get("names") or [])
    factory_ref = job["factory_ref"]
    factory_args = tuple(job.get("factory_args") or ())
    suite_ref = job["suite_ref"]
    suite_args = tuple(job.get("suite_args") or ())
    fingerprint = job.get("fingerprint")
    record_telemetry = bool(job.get("record_telemetry"))

    factory_obj = resolve_ref(factory_ref)
    factory = (
        (lambda: factory_obj(*factory_args)) if factory_args else factory_obj
    )
    testcases = {tc.name: tc for tc in resolve_ref(suite_ref)(*suite_args)}
    missing = [name for name in names if name not in testcases]
    if missing:
        raise LookupError(
            f"suite reference {suite_ref!r} does not provide "
            f"testcase(s) {missing}"
        )

    cached: Dict[str, Any] = {}
    if cache is not None:
        for name in names:
            hit = cache.get(fingerprint, name)
            if hit is not None:
                cached[name] = hit
    pending = [name for name in names if name not in cached]

    static = _ShardStatic(dict(job.get("model_start_lines") or {}))
    results: Dict[str, Any] = dict(cached)
    payload: List[dict] = []
    if pending:
        probe_store = None
        store_spec = job.get("probe_store")
        if store_spec:
            from ..obs.store import ProbeStoreSpec

            probe_store = ProbeStoreSpec(
                kind=store_spec.get("kind", "memory"),
                chunk_size=store_spec.get("chunk_size"),
                spill_dir=store_spec.get("spill_dir"),
            )
        # A private session per shard, like process-pool workers: the
        # kernel hooks key off the globally active telemetry.
        with telemetry_session(
            Telemetry() if record_telemetry else None
        ) as tel:
            analyzer = DynamicAnalyzer(
                factory,
                static,
                warn=bool(job.get("warn")),
                telemetry=tel if record_telemetry else None,
                engine=job.get("engine") or "auto",
                probe_store=probe_store,
                matcher=job.get("matcher") or "auto",
            )
            batch_size = job.get("batch_size")
            if batch_size is not None and batch_size > 1:
                from ..testing.testcase import TestSuite

                shard = TestSuite(
                    "shard", [testcases[name] for name in pending]
                )
                dynamic = analyzer.run_suite_batched(shard, batch_size)
                for name in pending:
                    results[name] = dynamic.per_testcase[name]
            else:
                for name in pending:
                    results[name] = analyzer.run_testcase(testcases[name])
            if record_telemetry:
                payload = tel.metrics.raw_records()
        if cache is not None:
            for name in pending:
                cache.put(fingerprint, name, results[name])

    return {
        "ok": True,
        "results": [[name, encode_match(results[name])] for name in names],
        "telemetry": payload,
        "wall": time.perf_counter() - t0,
        "cache_hits": len(cached),
        "executed": len(pending),
    }


class WorkerServer:
    """Asyncio NDJSON server executing shard jobs one at a time."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral; resolved after start()
        self.cache = DynamicResultCache()
        self.shards_run = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dft-shard"
        )
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Serve until :meth:`close` (or a ``shutdown`` op)."""
        await self._shutdown.wait()
        await self._close_now()

    async def _close_now(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    def close(self) -> None:
        """Request shutdown (thread-safe via the owning loop)."""
        self._shutdown.set()

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    write_message(writer, {"ok": False, "error": str(exc)})
                    await writer.drain()
                    break
                if message is None:
                    break
                response = await self._respond(message)
                write_message(writer, response)
                await writer.drain()
                if message.get("op") == "shutdown":
                    self._shutdown.set()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _respond(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            return {
                "ok": True,
                "role": ROLE,
                "shards_run": self.shards_run,
                "cache_entries": len(self.cache),
            }
        if op == "shutdown":
            return {"ok": True, "role": ROLE}
        if op == "run_shard":
            job = message.get("job")
            if not isinstance(job, dict):
                return {"ok": False, "error": "run_shard needs a 'job' object"}
            loop = asyncio.get_running_loop()
            try:
                response = await loop.run_in_executor(
                    self._pool, execute_shard, job, self.cache
                )
            except Exception as exc:
                return {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            self.shards_run += 1
            return response
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- embedding (tests, in-process fleets) --------------------------------

    def start_in_thread(self) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns the bound address.

        The embedding twin of :func:`serve_worker`: the caller gets a
        live worker address immediately and stops it with
        :meth:`close` (the loop notices via the shutdown event).
        """
        started = threading.Event()
        addr: List[Any] = []

        def _run() -> None:
            async def _main() -> None:
                await self.start()
                addr.append((self.host, self.port))
                started.set()
                await self.wait_closed()

            asyncio.run(_main())

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - startup hang
            raise RuntimeError("worker server failed to start")
        self._thread = thread
        return addr[0]


def serve_worker(host: str = "127.0.0.1", port: int = 0) -> int:
    """Blocking CLI entry point: serve shards until interrupted.

    Prints ``worker listening on HOST:PORT`` (flushed) once bound so
    scripts starting workers on ephemeral ports can scrape the
    address.
    """
    import sys

    worker = WorkerServer(host, port)

    async def _main() -> None:
        bound_host, bound_port = await worker.start()
        print(f"worker listening on {bound_host}:{bound_port}", flush=True)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge("service.worker_port").set(bound_port)
        await worker.wait_closed()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("worker stopped", file=sys.stderr)
    return 0
