"""Minimal stdlib HTTP client for the job server.

Backs ``repro-dft submit`` and the CI smoke script: submit a job,
poll its status until it leaves the queue, fetch the result envelope.
``http.client`` only — the client must run anywhere the CLI runs.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple


class ServiceError(RuntimeError):
    """A non-2xx response from the job server (message is one line)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def _request(
    addr: Tuple[str, int],
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Dict[str, Any]:
    conn = http.client.HTTPConnection(addr[0], addr[1], timeout=timeout)
    try:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        text = response.read().decode("utf-8", "replace")
    finally:
        conn.close()
    try:
        doc = json.loads(text)
    except ValueError:
        raise ServiceError(
            response.status, f"non-JSON response: {text[:200]!r}"
        ) from None
    if response.status >= 400:
        raise ServiceError(
            response.status, str(doc.get("error", "unknown error"))
        )
    return doc


def healthz(addr: Tuple[str, int], timeout: float = 30.0) -> Dict[str, Any]:
    """``GET /v1/healthz``."""
    return _request(addr, "GET", "/v1/healthz", timeout=timeout)


def submit_job(
    addr: Tuple[str, int], spec: Dict[str, Any], timeout: float = 30.0
) -> str:
    """``POST /v1/jobs``; returns the job id."""
    doc = _request(addr, "POST", "/v1/jobs", body=spec, timeout=timeout)
    return doc["id"]


def job_status(
    addr: Tuple[str, int], job_id: str, timeout: float = 30.0
) -> Dict[str, Any]:
    """``GET /v1/jobs/{id}``."""
    return _request(addr, "GET", f"/v1/jobs/{job_id}", timeout=timeout)


def job_result(
    addr: Tuple[str, int], job_id: str, timeout: float = 30.0
) -> Dict[str, Any]:
    """``GET /v1/jobs/{id}/result`` (the report envelope)."""
    return _request(addr, "GET", f"/v1/jobs/{job_id}/result", timeout=timeout)


def wait_for_job(
    addr: Tuple[str, int],
    job_id: str,
    timeout: float = 600.0,
    poll_interval: float = 0.2,
) -> Dict[str, Any]:
    """Poll until the job is ``done`` (returns its status document).

    Raises :class:`ServiceError` when the job ``failed`` (status 500
    semantics, carrying the job's one-line error) or on timeout.
    """
    deadline = time.monotonic() + timeout
    while True:
        status = job_status(addr, job_id)
        if status["status"] == "done":
            return status
        if status["status"] == "failed":
            raise ServiceError(500, status.get("error") or "job failed")
        if time.monotonic() >= deadline:
            raise ServiceError(
                408, f"job {job_id} still {status['status']} after {timeout}s"
            )
        time.sleep(poll_interval)
