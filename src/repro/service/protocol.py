"""The worker wire protocol: newline-delimited JSON over TCP.

One request, one response, one line each — a deliberately boring
protocol that any tool (``nc``, a test, another language) can speak.
Every message is a JSON object terminated by ``\\n``; requests carry an
``op`` field, responses carry ``ok`` (and ``error`` when ``ok`` is
false).  Nothing binary crosses the wire: a
:class:`~repro.instrument.matching.MatchResult` is just the testcase
name, the sorted exercised pair keys and the use-without-def strings,
all JSON-native — workers rebuild clusters and suites from importable
references, so traces never ship.

Ops:

``ping``
    Liveness + identity: ``{"op": "ping"}`` →
    ``{"ok": true, "role": "repro-dft-worker", "pid": ..., ...}``.
``run_shard``
    Execute one shard of a suite (see
    :func:`repro.service.worker.execute_shard` for the job fields) and
    return the per-testcase match results plus raw telemetry records
    for parent-side fold-back.
``shutdown``
    Ask the worker process to exit after responding.

The synchronous :func:`request` helper is the dispatcher side: one
connection per request, a socket timeout as the straggler detector,
and a :class:`ProtocolError` for anything that is not a well-formed
``ok`` response.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from ..instrument.matching import MatchResult

#: Protocol identifier sent back by ``ping`` and checked by the
#: dispatcher — catches pointing ``--worker`` at something that is not
#: a repro-dft worker before any shard is lost to it.
ROLE = "repro-dft-worker"

#: Hard cap on one message line (64 MiB).  A shard response carries
#: pair keys and counter records, not traces; anything larger is a
#: protocol violation, not data.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame, an oversized line, or an error response."""


# -- match-result codecs ----------------------------------------------------


def encode_match(match: MatchResult) -> Dict[str, Any]:
    """The JSON-native form of one testcase's match result.

    Pairs are sorted so the encoding is canonical: two workers that
    computed the same result produce the same bytes.
    """
    return {
        "testcase": match.testcase,
        "pairs": [list(pair) for pair in sorted(match.pairs)],
        "use_without_def": list(match.use_without_def),
    }


def decode_match(data: Dict[str, Any]) -> MatchResult:
    """Rebuild a :class:`MatchResult` from :func:`encode_match` output."""
    return MatchResult(
        testcase=data["testcase"],
        pairs={tuple(pair) for pair in data["pairs"]},
        use_without_def=list(data["use_without_def"]),
    )


# -- framing ----------------------------------------------------------------


def encode_message(message: Dict[str, Any]) -> bytes:
    """One NDJSON frame (compact separators, trailing newline)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


async def read_message(reader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream (``None`` on clean EOF)."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"protocol line exceeds {MAX_LINE_BYTES} bytes"
        )
    return decode_message(line)


def write_message(writer, message: Dict[str, Any]) -> None:
    """Queue one frame on an asyncio stream writer."""
    writer.write(encode_message(message))


# -- synchronous client (dispatcher side) -----------------------------------


def request(
    addr: Tuple[str, int],
    message: Dict[str, Any],
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """One blocking request/response exchange with a worker.

    Opens a fresh connection (workers are stateless between shards —
    their caches are process-level, not connection-level), applies
    ``timeout`` to the connect, the send and the read, and returns the
    decoded response.  Raises :class:`ProtocolError` for an ``ok:
    false`` response and lets :class:`OSError` / ``socket.timeout``
    propagate for transport failures — the retry loop in
    :class:`~repro.service.remote.RemoteExecutor` treats both as "this
    worker failed this shard".
    """
    with socket.create_connection(addr, timeout=timeout) as sock:
        sock.sendall(encode_message(message))
        chunks: List[bytes] = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            total += len(chunk)
            if total > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"response exceeds {MAX_LINE_BYTES} bytes"
                )
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    if not chunks:
        raise ProtocolError(f"worker {addr[0]}:{addr[1]} closed without a response")
    response = decode_message(b"".join(chunks))
    if not response.get("ok"):
        raise ProtocolError(
            f"worker {addr[0]}:{addr[1]} error: "
            f"{response.get('error', 'unknown error')}"
        )
    return response
