"""Remote fan-out: the executor backend over a worker fleet.

:class:`RemoteExecutor` is the third
:class:`~repro.exec.base.DynamicExecutor` backend (after serial and
process-pool): it stripes the suite with the same
:func:`~repro.exec.base.round_robin_shards` layout, but dispatches each
shard to a ``repro-dft worker`` daemon over the NDJSON socket protocol
instead of a forked process.

Fault model — workers are expendable:

* a **per-shard socket timeout** doubles as the straggler detector: a
  worker that hangs (or dies mid-shard, closing the socket) surfaces as
  a transport error on that one shard;
* the shard is then **re-dispatched** to the next live worker in
  rotation, with bounded retries and a small deterministic jitter
  (seeded per shard) so a thundering herd of failed shards doesn't
  reconnect in lockstep;
* re-running a shard is safe because shard execution is a pure function
  of the job — and usually *cheap*, because workers memoize results in
  a local :class:`~repro.exec.cache.DynamicResultCache` under the
  content-addressed key (static fingerprint, testcase name).

Determinism: results merge by the suite's testcase order, never by
completion or dispatch order, so a job sharded across N remote workers
is byte-identical to a single-process local run.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..obs import Telemetry, get_telemetry
from ..exec.base import DynamicExecutor, round_robin_shards
from ..exec.refs import resolve_ref
from .protocol import ROLE, ProtocolError, decode_match, request

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..instrument.matching import MatchResult
    from ..instrument.runner import ClusterFactory, DynamicResult
    from ..testing.testcase import TestSuite

#: Default per-shard socket timeout (seconds).  Generous: a shard is a
#: batch of whole simulations, not a single request.
DEFAULT_TIMEOUT = 300.0

#: Default number of re-dispatch attempts after the first failure.
DEFAULT_RETRIES = 2


def parse_worker_addr(spec: str) -> Tuple[str, int]:
    """Parse a ``host:port`` (or bare ``port``) worker address."""
    text = spec.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid worker address {spec!r}: bad port") from None
    if not 0 < port < 65536:
        raise ValueError(f"invalid worker address {spec!r}: port out of range")
    return host, port


class RemoteExecutor(DynamicExecutor):
    """Fan shards out to ``repro-dft worker`` daemons over TCP."""

    def __init__(
        self,
        worker_addrs: Sequence[Tuple[str, int]],
        factory_ref: str,
        suite_ref: str,
        suite_args: Sequence = (),
        factory_args: Sequence = (),
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        seed: int = 0,
    ) -> None:
        if not worker_addrs:
            raise ValueError("RemoteExecutor needs at least one worker address")
        # Fail fast, locally, on unresolvable references: the workers
        # will resolve the same names from the same package.
        resolve_ref(factory_ref)
        resolve_ref(suite_ref)
        self.worker_addrs = [tuple(addr) for addr in worker_addrs]
        self.workers = len(self.worker_addrs)
        self.factory_ref = factory_ref
        self.suite_ref = suite_ref
        self.suite_args = tuple(suite_args)
        self.factory_args = tuple(factory_args)
        self.timeout = timeout
        self.retries = retries
        self.seed = seed

    # -- fleet management ----------------------------------------------------

    def ping_all(self, timeout: float = 5.0) -> List[Dict[str, Any]]:
        """Ping every worker; raises if one is absent or not a worker."""
        replies = []
        for addr in self.worker_addrs:
            reply = request(addr, {"op": "ping"}, timeout=timeout)
            if reply.get("role") != ROLE:
                raise ProtocolError(
                    f"{addr[0]}:{addr[1]} is not a repro-dft worker "
                    f"(role={reply.get('role')!r})"
                )
            replies.append(reply)
        return replies

    def shutdown_all(self, timeout: float = 5.0) -> None:
        """Ask every worker process to exit (best-effort)."""
        for addr in self.worker_addrs:
            try:
                request(addr, {"op": "shutdown"}, timeout=timeout)
            except (OSError, ProtocolError):
                pass

    # -- dispatch ------------------------------------------------------------

    def _shard_job(
        self,
        names: Tuple[str, ...],
        static: "StaticAnalysisResult",
        warn: bool,
        record_telemetry: bool,
        engine: Optional[str],
        probe_store,
        batch_size: Optional[int],
        matcher: str,
    ) -> Dict[str, Any]:
        job: Dict[str, Any] = {
            "factory_ref": self.factory_ref,
            "factory_args": list(self.factory_args),
            "suite_ref": self.suite_ref,
            "suite_args": list(self.suite_args),
            "names": list(names),
            "model_start_lines": dict(static.model_start_lines),
            "fingerprint": getattr(static, "fingerprint", None),
            "warn": warn,
            "record_telemetry": record_telemetry,
            "engine": engine if engine is not None else "auto",
            "batch_size": batch_size,
            "matcher": matcher,
        }
        if probe_store is not None:
            job["probe_store"] = {
                "kind": probe_store.kind,
                "chunk_size": probe_store.chunk_size,
                "spill_dir": probe_store.spill_dir,
            }
        return job

    def _dispatch_shard(
        self, index: int, job: Dict[str, Any], tel: Telemetry
    ) -> Dict[str, Any]:
        """Run one shard with bounded retry over the worker rotation.

        Attempt 0 goes to the shard's home worker (``index`` mod fleet
        size); each failure rotates to the next address.  The jitter
        before a retry is deterministic per (seed, shard, attempt) so
        reruns of a job behave identically.
        """
        rng = random.Random(f"{self.seed}|{index}")
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            addr = self.worker_addrs[(index + attempt) % len(self.worker_addrs)]
            if attempt and self.timeout:
                time.sleep(min(0.25, self.timeout / 100.0) * rng.random())
            try:
                response = request(
                    addr, {"op": "run_shard", "job": job}, timeout=self.timeout
                )
            except (OSError, ProtocolError) as exc:
                last_error = exc
                if tel.enabled:
                    tel.metrics.counter(
                        "service.shard_retries", shard=index
                    ).inc()
                continue
            if tel.enabled and attempt:
                tel.metrics.counter("service.shards_redispatched").inc()
            return response
        raise RuntimeError(
            f"shard {index} ({len(job['names'])} testcase(s)) failed on "
            f"{self.retries + 1} worker(s); last error: {last_error}"
        )

    def run_suite(
        self,
        cluster_factory: "ClusterFactory",
        static: "StaticAnalysisResult",
        suite: "TestSuite",
        warn: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = "auto",
        probe_store=None,
        batch_size: Optional[int] = None,
        matcher: str = "auto",
    ) -> "DynamicResult":
        from ..instrument.runner import DynamicResult

        tel = telemetry if telemetry is not None else get_telemetry()
        names = [tc.name for tc in suite]
        result = DynamicResult()
        if not names:
            return result

        provided = {
            tc.name for tc in resolve_ref(self.suite_ref)(*self.suite_args)
        }
        unknown = [name for name in names if name not in provided]
        if unknown:
            raise LookupError(
                f"suite reference {self.suite_ref!r} does not provide "
                f"testcase(s) {unknown}; remote execution needs every "
                f"testcase to be rebuildable by name in the workers"
            )

        shards = round_robin_shards(names, self.workers)
        jobs = [
            self._shard_job(
                shard, static, warn, tel.enabled, engine,
                probe_store, batch_size, matcher,
            )
            for shard in shards
        ]
        per_name: Dict[str, "MatchResult"] = {}
        with tel.span(
            "dynamic.remote", workers=self.workers, testcases=len(names)
        ):
            with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
                outputs = list(
                    pool.map(
                        lambda pair: self._dispatch_shard(pair[0], pair[1], tel),
                        enumerate(jobs),
                    )
                )
            for index, response in enumerate(outputs):
                for name, encoded in response.get("results", []):
                    per_name[name] = decode_match(encoded)
                if tel.enabled:
                    tel.metrics.merge_raw(response.get("telemetry") or [])
                    tel.metrics.histogram("service.shard_seconds").observe(
                        float(response.get("wall", 0.0))
                    )
                    tel.metrics.counter(
                        "service.shards_dispatched", shard=index
                    ).inc()
                    hits = int(response.get("cache_hits", 0))
                    if hits:
                        tel.metrics.counter("service.remote_cache_hits").inc(hits)
        missing = [name for name in names if name not in per_name]
        if missing:
            raise RuntimeError(
                f"remote workers returned no result for testcase(s) {missing}"
            )
        for name in names:
            result.per_testcase[name] = per_name[name]
        return result
