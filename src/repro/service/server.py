"""The asyncio HTTP/JSON job server (``repro-dft serve``).

A deliberately small HTTP/1.1 surface, hand-rolled on
``asyncio.start_server`` (stdlib only — no web framework):

* ``POST /v1/jobs`` — submit a job: ``{"kind", "system", "config",
  "options"}`` where ``kind`` is one of :data:`~repro.service.jobs.JOB_KINDS`
  and ``config`` is a serialized :class:`~repro.core.DftConfig`
  (:meth:`~repro.core.DftConfig.to_json` shape).  Malformed bodies get a
  ``400`` with a one-line ``{"error": ...}``.
* ``GET /v1/jobs/{id}`` — lifecycle + progress
  (``queued → running → done | failed``; progress is sampled off the
  job's live obs telemetry session while it runs).
* ``GET /v1/jobs/{id}/result`` — the unified report envelope
  (:func:`repro.core.report.make_envelope`), verbatim.
* ``GET /v1/healthz`` — liveness + queue depth + fleet size.

Jobs execute one at a time on a worker thread (a job is itself
parallel — across remote shard workers or a local process pool), and
the queue is journaled (:class:`~repro.service.jobs.JobQueue`) so a
restarted server resumes its queued jobs.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import Telemetry, get_telemetry
from .jobs import JobQueue, JobSpec

_MAX_BODY_BYTES = 8 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: Counter-name prefixes worth surfacing as job progress.
_PROGRESS_PREFIXES = (
    "pipeline.", "exec.", "service.", "generation.", "mutation.",
)


def _progress_snapshot(tel: Telemetry) -> Dict[str, Any]:
    """A compact read of a live telemetry session (race-tolerant).

    The job thread mutates the session while we read it; plain-dict
    reads are safe enough for a heartbeat, and any torn read is
    replaced by the next sample.
    """
    snap: Dict[str, Any] = {}
    try:
        counters: Dict[str, float] = {}
        for counter in tel.metrics.counters():
            if counter.name.startswith(_PROGRESS_PREFIXES):
                counters[counter.name] = (
                    counters.get(counter.name, 0) + counter.value
                )
        if counters:
            snap["counters"] = counters
        current = tel.current_span()
        if current is not None:
            snap["stage"] = current.name
    except Exception:  # pragma: no cover - torn concurrent read
        pass
    return snap


def _execute_job(
    spec: JobSpec,
    tel: Telemetry,
    worker_addrs: Sequence[Tuple[str, int]],
) -> Dict[str, Any]:
    """Run one job to completion and return its report envelope.

    Runs on the job thread.  Mirrors the CLI subcommands exactly — a
    service job and a same-config CLI run produce identical coverage
    payloads (the CI smoke test compares them byte for byte).
    """
    from ..cli import SYSTEMS, _campaign
    from ..core import DftConfig, make_envelope, run_dft
    from ..obs.store import build_record
    from ..testing.testcase import TestSuite

    if spec.system not in SYSTEMS:
        raise ValueError(
            f"unknown system {spec.system!r} "
            f"(available: {', '.join(sorted(SYSTEMS))})"
        )
    entry = SYSTEMS[spec.system]
    cfg = DftConfig.from_json(spec.config).replace(telemetry=tel)
    cfg.apply_static_cache()
    options = spec.options

    def remote_executor():
        if not worker_addrs:
            return None
        from .remote import RemoteExecutor

        return RemoteExecutor(
            worker_addrs,
            entry["factory_ref"],
            entry["suite_ref"],
            seed=cfg.seed,
        )

    if spec.kind == "run":
        suite = TestSuite(spec.system, entry["suite"]())
        executor = remote_executor() or cfg.make_executor(
            entry["factory_ref"], entry["suite_ref"], len(suite)
        )
        result = run_dft(
            entry["factory"], suite, cfg.replace(executor=executor)
        )
        record = build_record(
            "run",
            system=spec.system,
            fingerprint=result.static.fingerprint,
            config_hash=cfg.config_hash(),
            suite_names=[tc.name for tc in suite],
            coverage=result.coverage,
            telemetry=result.telemetry,
        )
        return make_envelope(
            record,
            config_hash=cfg.config_hash(),
            fingerprint=result.static.fingerprint,
        )

    if spec.kind == "campaign":
        executor = remote_executor()
        campaign = _campaign(
            spec.system,
            cfg if executor is None else cfg.replace(executor=executor),
        )
        records = campaign.run()
        last = records[-1]
        suite = campaign.suite_for(campaign.iteration_count - 1)
        fingerprint = last.coverage.static.fingerprint
        record = build_record(
            "campaign",
            system=campaign.name,
            fingerprint=fingerprint,
            config_hash=cfg.config_hash(),
            suite_names=[tc.name for tc in suite],
            coverage=last.coverage,
            telemetry=tel,
            extra={
                "campaign": {
                    "iterations": len(records),
                    "trajectory": [
                        {
                            "index": rec.index,
                            "tests": rec.tests,
                            "exercised": rec.exercised_total,
                            "percent": round(rec.overall_percent, 2),
                        }
                        for rec in records
                    ],
                }
            },
        )
        return make_envelope(
            record, config_hash=cfg.config_hash(), fingerprint=fingerprint
        )

    if spec.kind == "mutate":
        from ..mutation import build_report, run_mutation

        run = run_mutation(
            entry["factory_ref"],
            options.get("suite_ref") or entry["suite_ref"],
            cfg,
            operators=options.get("operators"),
            max_mutants=options.get("max_mutants"),
        )
        coverage = None
        if not options.get("no_criteria", False):
            suite = TestSuite(spec.system, entry["suite"]())
            pipeline = run_dft(
                entry["factory"],
                suite,
                DftConfig(engine=cfg.engine, matcher=cfg.matcher),
            )
            coverage = pipeline.coverage
        payload = build_report(run, coverage=coverage, system=spec.system)
        return make_envelope(
            payload,
            config_hash=cfg.config_hash(),
            fingerprint=payload.get("fingerprint"),
        )

    if spec.kind == "generate":
        from ..generation import build_report, generate_suite

        base = TestSuite(spec.system, entry["suite"]())
        result = generate_suite(
            entry["factory"],
            base,
            spec.system,
            cfg,
            factory_ref=entry["factory_ref"],
            suite_ref=entry["suite_ref"],
            strategy=options.get("strategy"),
            target_mode=options.get("targets", "all"),
        )
        payload = build_report(result)
        return make_envelope(
            payload,
            config_hash=cfg.config_hash(),
            fingerprint=payload.get("fingerprint"),
        )

    raise ValueError(f"unknown job kind {spec.kind!r}")  # pragma: no cover


class JobServer:
    """HTTP front end + single-consumer job runner over a durable queue."""

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_addrs: Sequence[Tuple[str, int]] = (),
    ) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral; resolved after start()
        self.queue = JobQueue(state_dir)
        self.worker_addrs = [tuple(addr) for addr in worker_addrs]
        self._server: Optional[asyncio.AbstractServer] = None
        self._runner: Optional[asyncio.Task] = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dft-job"
        )
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start serving and start the job runner."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._runner = asyncio.ensure_future(self._drain())
        return self.host, self.port

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    def close(self) -> None:
        self._shutdown.set()

    def start_in_thread(self) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns the bound address."""
        started = threading.Event()
        addr: List[Any] = []

        def _run() -> None:
            async def _main() -> None:
                await self.start()
                addr.append((self.host, self.port))
                started.set()
                await self.wait_closed()

            asyncio.run(_main())

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover - startup hang
            raise RuntimeError("job server failed to start")
        self._thread = thread
        return addr[0]

    # -- job runner ----------------------------------------------------------

    async def _drain(self) -> None:
        """Single consumer: oldest queued job runs next, to completion."""
        loop = asyncio.get_running_loop()
        tel_root = get_telemetry()
        while True:
            job = self.queue.next_queued()
            if job is None:
                await asyncio.sleep(0.05)
                continue
            self.queue.mark_running(job.id)
            tel = Telemetry()
            future = loop.run_in_executor(
                self._pool, _execute_job, job.spec, tel, self.worker_addrs
            )
            while not future.done():
                await asyncio.sleep(0.1)
                self.queue.mark_progress(job.id, _progress_snapshot(tel))
            try:
                envelope = future.result()
            except Exception as exc:
                self.queue.mark_failed(
                    job.id, f"{type(exc).__name__}: {exc}"
                )
                if tel_root.enabled:
                    tel_root.metrics.counter(
                        "service.jobs_failed", kind=job.spec.kind
                    ).inc()
            else:
                self.queue.mark_progress(job.id, _progress_snapshot(tel))
                self.queue.mark_done(job.id, envelope)
                if tel_root.enabled:
                    tel_root.metrics.counter(
                        "service.jobs_done", kind=job.spec.kind
                    ).inc()

    # -- HTTP ----------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            status, doc = await self._serve_one(reader)
        except Exception as exc:  # pragma: no cover - handler bug guard
            status, doc = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(doc, separators=(",", ":")).encode() + b"\n"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_one(self, reader) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "malformed Content-Length header"}
        if content_length > _MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return self._route(method, path, body)

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            jobs = self.queue.jobs()
            by_status: Dict[str, int] = {}
            for job in jobs:
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return 200, {
                "ok": True,
                "jobs": by_status,
                "workers": len(self.worker_addrs),
            }
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "submit jobs with POST /v1/jobs"}
            return self._submit(body)
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            job_id, _, sub = tail.partition("/")
            job = self.queue.get(job_id)
            if job is None:
                return 404, {"error": f"no such job: {job_id!r}"}
            if sub == "" and method == "GET":
                return 200, job.describe()
            if sub == "result" and method == "GET":
                if job.status == "done":
                    return 200, job.result or {}
                if job.status == "failed":
                    return 500, {"error": job.error or "job failed"}
                return 409, {
                    "error": f"job {job_id} is {job.status}, not done"
                }
            return 404, {"error": f"unknown job endpoint: {path!r}"}
        return 404, {"error": f"unknown path: {path!r}"}

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"malformed JSON body: {exc}"}
        try:
            spec = JobSpec.from_json(doc)
            # Validate the config shape at submit time — a typo must
            # fail the POST, not the job minutes later.
            from ..core import DftConfig

            DftConfig.from_json(spec.config)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        job = self.queue.submit(spec)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "service.jobs_submitted", kind=spec.kind
            ).inc()
        return 202, {"id": job.id, "status": job.status}


def serve(
    state_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    worker_addrs: Sequence[Tuple[str, int]] = (),
) -> int:
    """Blocking CLI entry point for ``repro-dft serve``."""
    import sys

    server = JobServer(
        state_dir, host=host, port=port, worker_addrs=worker_addrs
    )

    async def _main() -> None:
        bound_host, bound_port = await server.start()
        print(f"serving on {bound_host}:{bound_port}", flush=True)
        print(
            f"state dir: {server.queue.state_dir} "
            f"({len(server.worker_addrs)} remote worker(s))",
            file=sys.stderr,
        )
        await server.wait_closed()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("server stopped", file=sys.stderr)
    return 0
