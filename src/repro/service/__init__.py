"""DFT as a service: async job server + sharded remote workers.

The CLI's one-process, one-host campaigns become a long-running
service in three pieces:

* :mod:`repro.service.worker` — a shard-execution daemon speaking the
  newline-delimited-JSON protocol of :mod:`repro.service.protocol`
  over a plain TCP socket.  Workers rebuild clusters and suites from
  importable references (never from shipped traces) and answer repeat
  shards from a local per-process
  :class:`~repro.exec.cache.DynamicResultCache` keyed by the
  content-addressed memo key (static fingerprint + testcase name).
* :mod:`repro.service.remote` — :class:`RemoteExecutor`, the
  :class:`~repro.exec.base.DynamicExecutor` backend that fans
  :func:`~repro.exec.base.round_robin_shards` out across a worker
  fleet with per-shard timeouts, bounded retry with deterministic
  jitter and straggler re-dispatch, then merges deterministically by
  suite order — a sharded job is byte-identical to a local run.
* :mod:`repro.service.server` — the asyncio HTTP/JSON job server
  (``POST /v1/jobs``, ``GET /v1/jobs/{id}``,
  ``GET /v1/jobs/{id}/result``, ``GET /v1/healthz``) over a durable
  :class:`~repro.service.jobs.JobQueue` journaled next to the
  run-history ledger; queued jobs survive a restart via journal
  replay.

``repro-dft worker`` / ``repro-dft serve`` / ``repro-dft submit`` are
the CLI entry points.
"""

from .client import (
    ServiceError,
    healthz,
    job_result,
    job_status,
    submit_job,
    wait_for_job,
)
from .jobs import JOB_KINDS, Job, JobQueue, JobSpec
from .protocol import (
    decode_match,
    encode_match,
    read_message,
    request,
    write_message,
)
from .remote import RemoteExecutor, parse_worker_addr
from .server import JobServer, serve
from .worker import WorkerServer, serve_worker

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "JobServer",
    "JobSpec",
    "RemoteExecutor",
    "ServiceError",
    "WorkerServer",
    "decode_match",
    "encode_match",
    "healthz",
    "job_result",
    "job_status",
    "parse_worker_addr",
    "read_message",
    "request",
    "serve",
    "serve_worker",
    "submit_job",
    "wait_for_job",
    "write_message",
]
