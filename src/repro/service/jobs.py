"""The durable job queue behind the HTTP job server.

A *job* is one unit of DFT work — the same four workloads the CLI
runs, addressed by kind:

* ``run`` — one pipeline pass over a system's suite;
* ``campaign`` — the iterative-refinement workflow;
* ``mutate`` — the mutation-adequacy campaign;
* ``generate`` — directed testcase generation.

Jobs are **journaled** as newline-delimited JSON to ``jobs.jsonl``
inside the service's state directory (by default next to the
run-history ledger, so one directory holds everything durable about
past and pending work).  The journal is an event log — ``submitted``,
``started``, ``done``, ``failed`` — and :meth:`JobQueue.replay` folds
it back into queue state on restart: finished jobs keep their results,
and jobs that were ``running`` when the server died return to
``queued`` (job execution is deterministic and memoized, so re-running
is safe and usually cheap).

Progress (testcases executed, iterations finished — read off the obs
telemetry mid-run) lives only in memory; the journal records
transitions, not heartbeats.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: The job kinds the server accepts, in CLI-subcommand order.
JOB_KINDS = ("run", "campaign", "mutate", "generate")

#: Lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

_JOURNAL_NAME = "jobs.jsonl"


@dataclass(frozen=True)
class JobSpec:
    """What to run: kind + system reference + serialized config.

    ``system`` names a registered system (see ``repro.cli.SYSTEMS``);
    ``config`` is a :meth:`repro.core.config.DftConfig.to_json` dict
    (validated at submit time); ``options`` carries kind-specific knobs
    (``iterations`` for campaigns, ``max_mutants`` / ``operators`` for
    mutation, ...).
    """

    kind: str
    system: str
    config: Dict[str, Any] = field(default_factory=dict)
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not self.system or not isinstance(self.system, str):
            raise ValueError("job spec needs a non-empty 'system' name")
        if not isinstance(self.config, dict):
            raise ValueError("job spec 'config' must be an object")
        if not isinstance(self.options, dict):
            raise ValueError("job spec 'options' must be an object")

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "system": self.system,
            "config": self.config,
            "options": self.options,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"job spec must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {"kind", "system", "config", "options"}
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            kind=data.get("kind", ""),
            system=data.get("system", ""),
            config=data.get("config") or {},
            options=data.get("options") or {},
        )


@dataclass
class Job:
    """One submitted job and its lifecycle state."""

    id: str
    spec: JobSpec
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Free-form progress snapshot (in-memory only, not journaled).
    progress: Dict[str, Any] = field(default_factory=dict)
    #: The report envelope, once ``done``.
    result: Optional[Dict[str, Any]] = None
    #: One-line failure message, once ``failed``.
    error: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` status document."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "system": self.spec.system,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": dict(self.progress),
            "error": self.error,
        }


class JobQueue:
    """FIFO job queue with a JSONL journal for crash-safe restarts."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.journal_path = os.path.join(state_dir, _JOURNAL_NAME)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._counter = 0
        os.makedirs(state_dir, exist_ok=True)
        self.replay()

    # -- journal ------------------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self) -> None:
        """Rebuild queue state from the journal (idempotent).

        A job that was ``running`` at crash time has a ``started``
        event but no terminal one — it comes back ``queued`` so the
        restarted server re-runs it.
        """
        with self._lock:
            self._jobs.clear()
            self._order.clear()
            self._counter = 0
            if not os.path.exists(self.journal_path):
                return
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue  # torn tail write from a crash
                    self._apply(event)
            # Interrupted jobs return to the queue.
            for job in self._jobs.values():
                if job.status == "running":
                    job.status = "queued"
                    job.started_at = None

    def _apply(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "submitted":
            try:
                spec = JobSpec.from_json(event.get("spec") or {})
            except ValueError:
                return
            job_id = event.get("id")
            if not job_id:
                return
            job = Job(
                id=job_id, spec=spec,
                submitted_at=float(event.get("at", 0.0)),
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            seq = _sequence_of(job_id)
            if seq is not None:
                self._counter = max(self._counter, seq)
            return
        job = self._jobs.get(event.get("id", ""))
        if job is None:
            return
        at = float(event.get("at", 0.0))
        if kind == "started":
            job.status = "running"
            job.started_at = at
        elif kind == "done":
            job.status = "done"
            job.finished_at = at
            job.result = event.get("result")
        elif kind == "failed":
            job.status = "failed"
            job.finished_at = at
            job.error = event.get("error")

    # -- queue operations ----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:06d}"
            job = Job(id=job_id, spec=spec, submitted_at=time.time())
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._append(
                {
                    "event": "submitted",
                    "id": job_id,
                    "at": job.submitted_at,
                    "spec": spec.to_json(),
                }
            )
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def next_queued(self) -> Optional[Job]:
        """The oldest queued job (does not change its state)."""
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.status == "queued":
                    return job
            return None

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.status = "running"
            job.started_at = time.time()
            self._append(
                {"event": "started", "id": job_id, "at": job.started_at}
            )

    def mark_progress(self, job_id: str, progress: Dict[str, Any]) -> None:
        """In-memory progress update (heartbeats are not journaled)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.progress.update(progress)

    def mark_done(self, job_id: str, result: Dict[str, Any]) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.status = "done"
            job.finished_at = time.time()
            job.result = result
            self._append(
                {
                    "event": "done",
                    "id": job_id,
                    "at": job.finished_at,
                    "result": result,
                }
            )

    def mark_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.status = "failed"
            job.finished_at = time.time()
            job.error = error
            self._append(
                {
                    "event": "failed",
                    "id": job_id,
                    "at": job.finished_at,
                    "error": error,
                }
            )


def _sequence_of(job_id: str) -> Optional[int]:
    prefix, sep, digits = job_id.partition("-")
    if prefix == "job" and sep and digits.isdigit():
        return int(digits)
    return None
