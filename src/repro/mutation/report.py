"""Kill-matrix reporting: the criterion-vs-mutation-score join.

The point of the mutation subsystem is an *empirical* check of the
paper's criterion hierarchy: a testsuite that satisfies a stronger
data-flow criterion should detect at least as many seeded faults as
one satisfying a weaker criterion.  The join works as follows:

1.  run the ordinary DFT pipeline on the unmutated system to get the
    per-testcase coverage matrix;
2.  build one greedy minimal sub-suite per criterion, *cumulatively*
    from the weakest criterion (all-PWeak) to the strongest
    (all-Strong) — each sub-suite extends the previous one, so the
    suites are nested exactly like the criteria;
3.  score every sub-suite against the kill matrix (no re-execution:
    :meth:`~repro.mutation.executor.MutationRun.score_for` reads the
    per-testcase kill rows).

Nesting makes the expected monotonicity structural: a superset suite
can only kill more.  What remains empirical — and what the report
shows — is *how much* each criterion step buys.

The JSON payload carries a ``schema`` tag (``repro-dft-mutation/1``)
so CI jobs can assert on a stable shape, and
:func:`kill_matrix_bytes` produces the canonical byte string used to
check that serial/parallel and interp/block runs agree exactly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..core.associations import AssocClass
from ..core.coverage import CoverageResult
from ..core.criteria import Criterion, satisfied

#: JSON payload schema tag; bump on any incompatible shape change.
SCHEMA = "repro-dft-mutation/1"

#: Weakest to strongest: the cumulative sub-suite construction order.
CRITERION_ORDER: List[Tuple[Criterion, AssocClass]] = [
    (Criterion.ALL_PWEAK, AssocClass.PWEAK),
    (Criterion.ALL_PFIRM, AssocClass.PFIRM),
    (Criterion.ALL_FIRM, AssocClass.FIRM),
    (Criterion.ALL_STRONG, AssocClass.STRONG),
]


def criterion_subsuites(
    coverage: CoverageResult,
    frontier_keys: Optional[frozenset] = None,
) -> Dict[Criterion, List[str]]:
    """Nested greedy sub-suites, one per class criterion.

    For each criterion (weakest first) the targets are the
    associations of its class that the *full* suite covers — a target
    no testcase exercises cannot constrain suite selection.  Testcases
    are added greedily (most new targets first; suite order breaks
    ties) on top of the previous criterion's selection, so the
    returned suites are nested: ``all-PWeak ⊆ all-PFirm ⊆ all-Firm ⊆
    all-Strong``.  An empty class contributes no targets and therefore
    no testcases (the window lifter has no PFirm associations).

    ``frontier_keys`` (from
    :func:`repro.analysis.subsume.analyze_subsumption`) restricts each
    criterion's target set to the non-subsumed associations: any
    testcase covering a frontier association necessarily covers the
    ones it subsumes, so the reduced selection still satisfies the full
    criterion.
    """
    names = coverage.testcase_names
    tc_keys = {
        name: set(coverage.dynamic.per_testcase[name].pairs) for name in names
    }
    chosen: List[str] = []
    covered: set = set()
    result: Dict[Criterion, List[str]] = {}
    for criterion, klass in CRITERION_ORDER:
        targets = {
            a.key
            for a in coverage.associations
            if a.klass is klass
            and coverage.is_covered(a)
            and (frontier_keys is None or a.key in frontier_keys)
        }
        while targets - covered:
            best: Optional[str] = None
            best_gain = 0
            for name in names:
                if name in chosen:
                    continue
                gain = len((targets - covered) & tc_keys[name])
                if gain > best_gain:
                    best, best_gain = name, gain
            if best is None:  # pragma: no cover - targets are coverable
                break
            chosen.append(best)
            covered |= tc_keys[best]
        result[criterion] = list(chosen)
    return result


def build_report(
    run,
    coverage: Optional[CoverageResult] = None,
    system: str = "",
    subsumption=None,
) -> dict:
    """The machine-readable mutation report (schema ``repro-dft-mutation/1``).

    ``run`` is a :class:`~repro.mutation.executor.MutationRun`;
    ``coverage`` (when given) adds the per-criterion rows of the
    criterion-vs-score join.  ``subsumption`` (a
    :class:`~repro.analysis.subsume.SubsumptionResult`, when given)
    scores the criterion rows over frontier-reduced sub-suites instead
    of the full covered target sets.
    """
    payload = {
        "schema": SCHEMA,
        "system": system,
        "targets_mode": "frontier" if subsumption is not None else "all",
        "seed": run.seed,
        "engine": run.engine,
        "workers": run.workers,
        "tolerance": run.tolerance,
        "operators": list(run.operators),
        "testcases": list(run.testcase_names),
        "oracle_signals": list(run.oracle_signals),
        "counts": {
            "generated": run.generated,
            "sampled": len(run.specs),
            "viable": run.viable,
            "killed": run.killed,
            "survived": run.survived,
            "nonviable": run.nonviable,
            "timeouts": run.timeouts,
        },
        "mutation_score": round(run.mutation_score, 6),
        "mutants": [
            {
                "id": o.spec.mutant_id,
                "operator": o.spec.operator,
                "target": o.spec.target,
                "detail": o.spec.detail,
                "status": o.status,
                "killed_by": list(o.killed_by),
                "timed_out": o.timed_out,
            }
            for o in run.outcomes
        ],
    }
    if coverage is not None:
        frontier_keys = (
            subsumption.frontier_keys if subsumption is not None else None
        )
        subsuites = criterion_subsuites(coverage, frontier_keys)
        rows = []
        for criterion, _klass in CRITERION_ORDER:
            names = subsuites[criterion]
            rows.append(
                {
                    "criterion": str(criterion),
                    "satisfied": satisfied(criterion, coverage),
                    "testcases": names,
                    "num_testcases": len(names),
                    "score": round(run.score_for(names), 6),
                }
            )
        rows.append(
            {
                "criterion": "full-suite",
                "satisfied": True,
                "testcases": list(run.testcase_names),
                "num_testcases": len(run.testcase_names),
                "score": round(run.mutation_score, 6),
            }
        )
        payload["criteria"] = rows
    return payload


def kill_matrix_bytes(run) -> bytes:
    """Canonical bytes of the kill matrix.

    One ``[mutant_id, [killing testcases...]]`` row per sampled mutant
    in enumeration order, with nonviable mutants tagged explicitly.
    Timing never enters, so serial/parallel and interp/block runs of
    the same seed must produce identical bytes.
    """
    rows = [
        [o.spec.mutant_id, "nonviable" if o.status == "nonviable" else list(o.killed_by)]
        for o in run.outcomes
    ]
    return json.dumps(rows, separators=(",", ":"), sort_keys=True).encode("ascii")


def format_report(payload: dict) -> str:
    """Human-readable text rendering of a report payload."""
    lines: List[str] = []
    counts = payload["counts"]
    lines.append(
        f"mutation analysis of {payload['system'] or payload.get('factory', '?')} "
        f"(seed {payload['seed']}, engine {payload['engine']})"
    )
    lines.append(
        f"  mutants: {counts['generated']} generated, {counts['sampled']} sampled, "
        f"{counts['viable']} viable, {counts['nonviable']} nonviable"
    )
    lines.append(
        f"  killed {counts['killed']} / survived {counts['survived']}"
        + (f" / {counts['timeouts']} over budget" if counts["timeouts"] else "")
    )
    lines.append(f"  mutation score (full suite): {100.0 * payload['mutation_score']:.1f}%")
    by_op: Dict[str, List[dict]] = {}
    for m in payload["mutants"]:
        by_op.setdefault(m["operator"], []).append(m)
    lines.append("")
    lines.append("  per operator:")
    for op in payload["operators"]:
        ms = by_op.get(op, [])
        viable = [m for m in ms if m["status"] != "nonviable"]
        killed = sum(1 for m in viable if m["status"] == "killed")
        pct = f"{100.0 * killed / len(viable):5.1f}%" if viable else "    -"
        lines.append(
            f"    {op:6s} {len(ms):4d} sampled  {len(viable):4d} viable  "
            f"{killed:4d} killed  {pct}"
        )
    if "criteria" in payload:
        lines.append("")
        lines.append("  criterion-vs-mutation-score (cumulative greedy sub-suites):")
        lines.append("    criterion     satisfied  testcases  score")
        for row in payload["criteria"]:
            lines.append(
                f"    {row['criterion']:13s} {'yes' if row['satisfied'] else 'no ':9s} "
                f"{row['num_testcases']:9d}  {100.0 * row['score']:5.1f}%"
            )
    survivors = [m for m in payload["mutants"] if m["status"] == "survived"]
    if survivors:
        lines.append("")
        lines.append(f"  surviving mutants ({len(survivors)}):")
        for m in survivors[:20]:
            lines.append(f"    {m['id']}: {m['detail']}")
        if len(survivors) > 20:
            lines.append(f"    ... and {len(survivors) - 20} more")
    return "\n".join(lines)


def write_csv(payload: dict, stream: TextIO) -> None:
    """One CSV row per sampled mutant (RFC-4180 via :mod:`csv`)."""
    import csv

    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(["id", "operator", "target", "status", "timed_out", "killed_by"])
    for m in payload["mutants"]:
        writer.writerow(
            [
                m["id"],
                m["operator"],
                m["target"],
                m["status"],
                int(m["timed_out"]),
                "|".join(m["killed_by"]),
            ]
        )
