"""Mutation testing of the DFT coverage criteria.

Seeds faults into the TDF systems at two levels (``processing()`` ASTs
and the cluster netlist), executes every mutant differentially against
reference traces, and joins the resulting kill matrix with the
per-criterion coverage data — an empirical validation that suites
satisfying stronger data-flow criteria detect more faults.

See :mod:`repro.mutation.operators` (fault models),
:mod:`repro.mutation.executor` (differential execution, serial and
process-parallel) and :mod:`repro.mutation.report` (criterion join,
JSON/CSV/text reports).
"""

from .executor import (
    DEFAULT_BUDGET_SECONDS,
    MutantOutcome,
    MutationRun,
    compute_baselines,
    run_mutant,
    run_mutation,
    traces_diverge,
)
from .operators import (
    ALL_OPERATORS,
    MutantNotApplicable,
    MutantSpec,
    MutationOperator,
    MutationPoint,
    apply_mutant,
    generate_mutants,
)
from .report import (
    SCHEMA,
    build_report,
    criterion_subsuites,
    format_report,
    kill_matrix_bytes,
    write_csv,
)

__all__ = [
    "ALL_OPERATORS",
    "DEFAULT_BUDGET_SECONDS",
    "MutantNotApplicable",
    "MutantOutcome",
    "MutantSpec",
    "MutationOperator",
    "MutationPoint",
    "MutationRun",
    "SCHEMA",
    "apply_mutant",
    "build_report",
    "compute_baselines",
    "criterion_subsuites",
    "format_report",
    "generate_mutants",
    "kill_matrix_bytes",
    "run_mutant",
    "run_mutation",
    "traces_diverge",
    "write_csv",
]
