"""Mutation operators over TDF clusters (AST level and netlist level).

Each operator enumerates its *mutation points* on a cluster as a
deterministic list — the order depends only on the cluster's module
registration order, port declaration order and the (freshly parsed)
``processing()`` ASTs.  A :class:`MutantSpec` names one point by
``(operator, site index, target)``; generation and application share
the single enumeration code path, so a spec generated in one process
can be re-applied to an identically built cluster in any other process
(the property the parallel mutant executor relies on).

AST operators rewrite a module's ``processing()`` body and install the
mutated function on *that instance only*, through the same
compile/install pipeline the instrumenter uses
(:func:`repro.instrument.compile_processing_ast` /
:func:`install_processing_ast`):

``aor``  arithmetic operator replacement (``+ <-> -``, ``* <-> /``);
``ror``  relational operator replacement (``< <-> <=``, ``> <-> >=``,
         ``== <-> !=``);
``cpr``  constant perturbation (int ``+1``, float ``+0.5``);
``sdl``  statement deletion (eligible statements become ``pass``);
``dsr``  def-site retarget (``self.m_x = e`` stores into the next
         member variable instead).

Netlist operators perturb the cluster structure and attributes:

``swap``   exchange the signals bound to two input ports of a module;
``rate``   increment one port's declared rate after ``set_attributes``;
``delay``  increment one port's declared delay after ``set_attributes``;
``gain``   perturb a float coefficient of a redefining library element;
``drop``   bypass a SISO redefining element (its readers are rewired to
           the element's input signal).

A mutant that cannot elaborate (rate/delay inconsistencies, schedule
deadlocks) is *nonviable*, not killed — the executor classifies that.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.astutils import (
    KERNEL_ATTRS,
    SourceInfo,
    get_source_info,
    member_store_names,
    port_write_target,
    self_attribute,
)
from ..instrument.instrumenter import compile_processing_ast, install_processing_ast
from ..tdf.cluster import Cluster
from ..tdf.module import TdfModule
from ..tdf.ports import Port, TdfIn
from ..tdf.signal import Signal


class MutantNotApplicable(Exception):
    """The spec does not name a valid mutation point on this cluster."""


@dataclass(frozen=True)
class MutantSpec:
    """A picklable name for one mutation point (see module docstring)."""

    mutant_id: str
    operator: str
    target: str
    site: int
    detail: str


@dataclass(frozen=True)
class MutationPoint:
    """One applicable mutation on one concrete cluster."""

    target: str
    detail: str
    apply: Callable[[], None]


#: ``(underlying function, operator, site)`` -> ``(code, func name)``.
#: A mutant is applied once per testcase (fresh cluster each time); the
#: AST rewrite and ``compile()`` only run on the first application.
_AST_CODE_CACHE: Dict[tuple, Tuple[Any, str]] = {}


def _underlying(module: TdfModule) -> Callable:
    fn = module.resolved_processing()
    return fn.__func__ if isinstance(fn, types.MethodType) else fn


def _ast_modules(cluster: Cluster) -> Iterator[Tuple[TdfModule, SourceInfo]]:
    """Modules whose processing source is mutated (DUV, non-library).

    Matches the instrumenter's scope: testbench modules sit outside the
    design under verification and redefining library elements get their
    own netlist operators instead.
    """
    for module in cluster.modules:
        if module.TESTBENCH or module.REDEFINING:
            continue
        if module._processing_fn is None and type(module).processing is TdfModule.processing:
            continue
        try:
            info = get_source_info(module.resolved_processing())
        except (OSError, TypeError, ValueError):
            continue
        yield module, info


class MutationOperator:
    """Base class: a named family of mutation points."""

    name: str = "?"
    description: str = ""

    def points(self, cluster: Cluster) -> List[MutationPoint]:
        raise NotImplementedError

    def point_at(self, cluster: Cluster, site: int) -> Optional[MutationPoint]:
        """The point with global index ``site`` (None when out of range).

        Default implementation enumerates everything; operators with an
        expensive :meth:`points` override this with a scoped lookup.
        """
        pts = self.points(cluster)
        if 0 <= site < len(pts):
            return pts[site]
        return None


#: ``(operator name, underlying processing fn)`` -> node-point count.
#: Lets :meth:`_AstOperator.point_at` skip re-parsing the source of
#: every module that cannot own the requested site — ``apply_mutant``
#: runs once per (mutant, testcase) pair, and without this each call
#: re-walked the AST of all mutable modules just to index one point.
_POINT_COUNT_CACHE: Dict[tuple, int] = {}


class _AstOperator(MutationOperator):
    """AST operators share the enumerate/mutate/compile/install plumbing."""

    def node_points(
        self, module: TdfModule, info: SourceInfo
    ) -> List[Tuple[str, Callable[[], None]]]:
        """``(detail, mutate)`` pairs; ``mutate`` edits ``info.func`` in place."""
        raise NotImplementedError

    def points(self, cluster: Cluster) -> List[MutationPoint]:
        pts: List[MutationPoint] = []
        for module, info in _ast_modules(cluster):
            base = len(pts)
            node_pts = self.node_points(module, info)
            _POINT_COUNT_CACHE[(self.name, _underlying(module))] = len(node_pts)
            for offset, (detail, mutate) in enumerate(node_pts):
                pts.append(self._point(module, info, base + offset, detail, mutate))
        return pts

    def point_at(self, cluster: Cluster, site: int) -> Optional[MutationPoint]:
        """Scoped lookup: only the module owning ``site`` is parsed.

        Site indices are assigned module-major in cluster order (see
        :meth:`points`), so known per-module counts let the scan skip
        straight to the owner; the counts are a pure function of the
        underlying processing source, hence cacheable across clusters.
        """
        if site < 0:
            return None
        base = 0
        for module in cluster.modules:
            if module.TESTBENCH or module.REDEFINING:
                continue
            if (
                module._processing_fn is None
                and type(module).processing is TdfModule.processing
            ):
                continue
            key = (self.name, _underlying(module))
            count = _POINT_COUNT_CACHE.get(key)
            if count is not None and site >= base + count:
                base += count
                continue
            try:
                info = get_source_info(module.resolved_processing())
            except (OSError, TypeError, ValueError):
                _POINT_COUNT_CACHE[key] = 0
                continue
            node_pts = self.node_points(module, info)
            _POINT_COUNT_CACHE[key] = len(node_pts)
            if site < base + len(node_pts):
                detail, mutate = node_pts[site - base]
                return self._point(module, info, site, detail, mutate)
            base += len(node_pts)
        return None

    def _point(
        self,
        module: TdfModule,
        info: SourceInfo,
        site: int,
        detail: str,
        mutate: Callable[[], None],
    ) -> MutationPoint:
        underlying = _underlying(module)
        func_name = info.func.name
        op_name = self.name

        def apply() -> None:
            key = (underlying, op_name, site)
            cached = _AST_CODE_CACHE.get(key)
            if cached is None:
                mutate()
                cached = (compile_processing_ast(info.func, info), func_name)
                _AST_CODE_CACHE[key] = cached
            install_processing_ast(module, cached[0], cached[1])

        return MutationPoint(module.name, detail, apply)


_AOR_SWAP = {ast.Add: ast.Sub, ast.Sub: ast.Add, ast.Mult: ast.Div, ast.Div: ast.Mult}
_ROR_SWAP = {
    ast.Lt: ast.LtE,
    ast.LtE: ast.Lt,
    ast.Gt: ast.GtE,
    ast.GtE: ast.Gt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}

_OP_SYMBOL = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}


class AorOperator(_AstOperator):
    name = "aor"
    description = "arithmetic operator replacement"

    def node_points(self, module, info):
        pts = []
        for node in ast.walk(info.func):
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and type(node.op) in _AOR_SWAP:
                old, new = type(node.op), _AOR_SWAP[type(node.op)]
                detail = (
                    f"{module.name}: {_OP_SYMBOL[old]} -> {_OP_SYMBOL[new]} "
                    f"@L{info.absolute_line(node.lineno)}"
                )

                def mutate(node=node, new=new):
                    node.op = new()

                pts.append((detail, mutate))
        return pts


class RorOperator(_AstOperator):
    name = "ror"
    description = "relational operator replacement"

    def node_points(self, module, info):
        pts = []
        for node in ast.walk(info.func):
            if isinstance(node, ast.Compare) and node.ops and type(node.ops[0]) in _ROR_SWAP:
                old, new = type(node.ops[0]), _ROR_SWAP[type(node.ops[0])]
                detail = (
                    f"{module.name}: {_OP_SYMBOL[old]} -> {_OP_SYMBOL[new]} "
                    f"@L{info.absolute_line(node.lineno)}"
                )

                def mutate(node=node, new=new):
                    node.ops[0] = new()

                pts.append((detail, mutate))
        return pts


class CprOperator(_AstOperator):
    name = "cpr"
    description = "constant perturbation"

    def node_points(self, module, info):
        pts = []
        for node in ast.walk(info.func):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)
            ):
                delta = 1 if isinstance(node.value, int) else 0.5
                detail = (
                    f"{module.name}: {node.value!r} -> {node.value + delta!r} "
                    f"@L{info.absolute_line(node.lineno)}"
                )

                def mutate(node=node, delta=delta):
                    node.value = node.value + delta

                pts.append((detail, mutate))
        return pts


class SdlOperator(_AstOperator):
    name = "sdl"
    description = "statement deletion"

    def node_points(self, module, info):
        out_ports = {p.name for p in module.out_ports()}
        pts = []
        for stmts, idx, stmt in _statement_sites(info.func):
            if not self._eligible(stmt, out_ports):
                continue
            detail = (
                f"{module.name}: delete {type(stmt).__name__} "
                f"@L{info.absolute_line(stmt.lineno)}"
            )

            def mutate(stmts=stmts, idx=idx, stmt=stmt):
                stmts[idx] = ast.copy_location(ast.Pass(), stmt)

            pts.append((detail, mutate))
        return pts

    @staticmethod
    def _eligible(stmt: ast.stmt, out_ports) -> bool:
        if isinstance(stmt, ast.Expr):
            # Docstrings and other bare constants are equivalent mutants.
            if isinstance(stmt.value, ast.Constant):
                return False
        elif not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            return False
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                target = port_write_target(node)
                if target is not None and target in out_ports:
                    return False
        return True


def _statement_sites(func: ast.FunctionDef) -> List[Tuple[list, int, ast.stmt]]:
    """``(parent list, index, statement)`` for every statement, in a
    deterministic depth-first order."""
    sites: List[Tuple[list, int, ast.stmt]] = []

    def visit(stmts: list) -> None:
        for idx, stmt in enumerate(stmts):
            sites.append((stmts, idx, stmt))
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list):
                    visit(inner)

    visit(func.body)
    return sites


class DsrOperator(_AstOperator):
    name = "dsr"
    description = "def-site retarget (store into the next member variable)"

    def node_points(self, module, info):
        members = sorted(member_store_names(info.func))
        if len(members) < 2:
            return []
        pts = []
        for node in ast.walk(info.func):
            target: Optional[ast.Attribute] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Attribute):
                    target = node.targets[0]
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Attribute):
                target = node.target
            if target is None:
                continue
            attr = self_attribute(target)
            if attr is None or attr in KERNEL_ATTRS or attr not in members:
                continue
            successor = members[(members.index(attr) + 1) % len(members)]
            detail = (
                f"{module.name}: def self.{attr} -> self.{successor} "
                f"@L{info.absolute_line(node.lineno)}"
            )

            def mutate(target=target, successor=successor):
                target.attr = successor

            pts.append((detail, mutate))
        return pts


# -- netlist operators ---------------------------------------------------------


def _rebind(port: TdfIn, new_sig: Signal) -> None:
    """Move an already-bound input port onto a different signal."""
    old = port.signal
    if old is not None:
        if port in old.readers:
            old.readers.remove(port)
        old._cursors.pop(id(port), None)
    port.signal = new_sig
    new_sig.attach_reader(port)


def _wrap_set_attributes(module: TdfModule, extra: Callable[[], None]) -> None:
    """Run ``extra`` after the module's own ``set_attributes``.

    Installed as an *instance* attribute so only this cluster's module
    is affected; elaboration calls ``set_attributes`` (possibly several
    times under dynamic TDF), so the perturbation survives
    re-elaboration exactly like a genuine attribute declaration would.
    """
    original = module.set_attributes

    def wrapped() -> None:
        original()
        extra()

    module.set_attributes = wrapped


class SwapOperator(MutationOperator):
    name = "swap"
    description = "exchange the signals bound to two input ports"

    def points(self, cluster):
        pts = []
        for module in cluster.modules:
            if module.TESTBENCH:
                continue
            ins = [p for p in module.in_ports() if p.signal is not None]
            for i in range(len(ins)):
                for j in range(i + 1, len(ins)):
                    a, b = ins[i], ins[j]
                    if a.signal is b.signal:
                        continue
                    detail = f"{a.full_name()} <-> {b.full_name()}"

                    def apply(a=a, b=b):
                        sig_a, sig_b = a.signal, b.signal
                        _rebind(a, sig_b)
                        _rebind(b, sig_a)

                    pts.append(MutationPoint(module.name, detail, apply))
        return pts


class RateOperator(MutationOperator):
    name = "rate"
    description = "off-by-one port rate"

    def points(self, cluster):
        pts = []
        for module in cluster.modules:
            if module.TESTBENCH:
                continue
            for port in module.ports():
                if port.signal is None:
                    continue
                detail = f"{port.full_name()}: rate += 1"

                def apply(module=module, port=port):
                    _wrap_set_attributes(module, lambda p=port: p.set_rate(p.rate + 1))

                pts.append(MutationPoint(module.name, detail, apply))
        return pts


class DelayOperator(MutationOperator):
    name = "delay"
    description = "off-by-one port delay"

    def points(self, cluster):
        pts = []
        for module in cluster.modules:
            if module.TESTBENCH:
                continue
            for port in module.ports():
                if port.signal is None:
                    continue
                detail = f"{port.full_name()}: delay += 1"

                def apply(module=module, port=port):
                    _wrap_set_attributes(module, lambda p=port: p.set_delay(p.delay + 1))

                pts.append(MutationPoint(module.name, detail, apply))
        return pts


class GainOperator(MutationOperator):
    name = "gain"
    description = "perturb a float coefficient of a redefining element"

    def points(self, cluster):
        pts = []
        for module in cluster.modules:
            if not module.REDEFINING:
                continue
            for attr in sorted(vars(module)):
                if not attr.startswith("m_"):
                    continue
                value = getattr(module, attr)
                if isinstance(value, bool) or not isinstance(value, float):
                    continue
                mutated = value * 1.5 + 0.25
                detail = f"{module.name}.{attr}: {value!r} -> {mutated!r}"

                def apply(module=module, attr=attr, mutated=mutated):
                    setattr(module, attr, mutated)

                pts.append(MutationPoint(module.name, detail, apply))
        return pts


class DropOperator(MutationOperator):
    name = "drop"
    description = "bypass a SISO redefining element"

    def points(self, cluster):
        pts = []
        for module in cluster.modules:
            if not module.REDEFINING:
                continue
            ins = [p for p in module.in_ports() if p.signal is not None]
            outs = [p for p in module.out_ports() if p.signal is not None]
            if len(ins) != 1 or len(outs) != 1:
                continue
            in_sig, out_sig = ins[0].signal, outs[0].signal
            if not out_sig.readers:
                continue
            detail = f"bypass {module.name} ({in_sig.name} feeds {out_sig.name} readers)"

            def apply(in_sig=in_sig, out_sig=out_sig):
                for reader in list(out_sig.readers):
                    _rebind(reader, in_sig)

            pts.append(MutationPoint(module.name, detail, apply))
        return pts


#: Registry in the canonical enumeration order (AST then netlist).
ALL_OPERATORS: Dict[str, MutationOperator] = {
    op.name: op
    for op in (
        AorOperator(),
        RorOperator(),
        CprOperator(),
        SdlOperator(),
        DsrOperator(),
        SwapOperator(),
        RateOperator(),
        DelayOperator(),
        GainOperator(),
        DropOperator(),
    )
}


def _select_operators(names: Optional[Sequence[str]]) -> List[str]:
    if not names:
        return list(ALL_OPERATORS)
    unknown = [n for n in names if n not in ALL_OPERATORS]
    if unknown:
        raise ValueError(
            f"unknown mutation operator(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(ALL_OPERATORS)}"
        )
    return list(names)


def generate_mutants(
    cluster: Cluster, operators: Optional[Sequence[str]] = None
) -> List[MutantSpec]:
    """Enumerate every mutation point of ``operators`` on ``cluster``.

    The spec list is deterministic for identically built clusters, so
    any process can regenerate it from the cluster factory alone.
    """
    specs: List[MutantSpec] = []
    for name in _select_operators(operators):
        op = ALL_OPERATORS[name]
        for site, point in enumerate(op.points(cluster)):
            specs.append(
                MutantSpec(
                    mutant_id=f"{name}:{site:03d}:{point.target}",
                    operator=name,
                    target=point.target,
                    site=site,
                    detail=point.detail,
                )
            )
    return specs


def apply_mutant(cluster: Cluster, spec: MutantSpec) -> None:
    """Apply ``spec`` to a freshly built ``cluster`` (in place).

    Raises :class:`MutantNotApplicable` when the cluster does not
    expose the named point (e.g. the spec came from a different system).
    """
    op = ALL_OPERATORS.get(spec.operator)
    if op is None:
        raise MutantNotApplicable(f"unknown operator {spec.operator!r}")
    point = op.point_at(cluster, spec.site)
    if point is None or point.target != spec.target:
        raise MutantNotApplicable(
            f"mutant {spec.mutant_id} does not exist on cluster "
            f"{cluster.name!r} ({len(op.points(cluster))} "
            f"{spec.operator} points)"
        )
    point.apply()
