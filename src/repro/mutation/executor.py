"""Differential mutant execution (serial and process-parallel).

The oracle is a *trace diff*: every mutant runs the full testsuite and
each testcase's traced oracle signals are compared sample-by-sample
against the unmutated baseline.  A mutant is

* **killed** by a testcase when the traces diverge beyond the
  tolerance (or the mutated run raises at simulation time);
* **nonviable** when it cannot even be applied or elaborated
  (schedule deadlock, rate inconsistency) — it drops out of the
  mutation-score denominator;
* **survived** when every testcase reproduces the baseline exactly.

Determinism is the design driver: verdicts depend only on
``(factory, suite, spec, engine, tolerance)`` — never on wall-clock —
so the kill matrix is byte-identical across ``--workers`` counts and
across the interpreter and the compiled block engine (which are
bit-identical by construction).  The per-mutant ``budget_seconds``
therefore only *flags* slow mutants (``timed_out`` + the
``mutation.timeout`` counter); it never truncates their verdicts.

Parallel execution shards *mutant indices* across worker processes
(:func:`repro.exec.base.round_robin_shards`).  Workers rebuild the
factory and suite from importable references, regenerate the identical
spec list and baseline traces, run their shard, and ship picklable
outcomes back; the parent merges by index.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor as _Pool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from ..core.config import DftConfig
from ..exec.base import round_robin_shards
from ..exec.refs import resolve_ref
from ..obs import Telemetry, get_telemetry, telemetry_session
from ..tdf import Simulator, Tracer
from ..tdf.cluster import Cluster
from ..testing.testcase import TestCase
from .operators import (
    ALL_OPERATORS,
    MutantNotApplicable,
    MutantSpec,
    apply_mutant,
    generate_mutants,
)

#: Per-signal sample rows, as recorded by the tracer.
TraceMap = Dict[str, List[tuple]]

#: Default per-mutant wall budget before the ``timed_out`` flag is set.
DEFAULT_BUDGET_SECONDS = 30.0


@dataclass(frozen=True)
class MutantOutcome:
    """The verdict for one mutant, independent of execution backend."""

    spec: MutantSpec
    status: str  # "killed" | "survived" | "nonviable"
    killed_by: Tuple[str, ...]  # killing testcases, in suite order
    timed_out: bool
    seconds: float


@dataclass
class MutationRun:
    """The full result of one mutation-analysis run."""

    factory_ref: str
    suite_ref: str
    operators: List[str]
    seed: int
    engine: str
    workers: int
    tolerance: float
    generated: int
    specs: List[MutantSpec]
    outcomes: List[MutantOutcome]
    testcase_names: List[str]
    oracle_signals: List[str]

    # -- aggregate counts ----------------------------------------------------

    @property
    def viable(self) -> int:
        return sum(1 for o in self.outcomes if o.status != "nonviable")

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "killed")

    @property
    def survived(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "survived")

    @property
    def nonviable(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "nonviable")

    @property
    def timeouts(self) -> int:
        return sum(1 for o in self.outcomes if o.timed_out)

    @property
    def mutation_score(self) -> float:
        """Killed fraction of the viable mutants (full suite)."""
        return self.score_for(self.testcase_names)

    def score_for(self, testcase_names: Sequence[str]) -> float:
        """Mutation score of the sub-suite ``testcase_names``.

        Computed from the per-testcase kill matrix, so any sub-suite
        can be scored without re-running a single mutant.
        """
        subset = set(testcase_names)
        viable = killed = 0
        for outcome in self.outcomes:
            if outcome.status == "nonviable":
                continue
            viable += 1
            if subset.intersection(outcome.killed_by):
                killed += 1
        if viable == 0:
            return 0.0
        return killed / viable


# -- reference resolution ------------------------------------------------------


def _resolve_factory(ref: str, args: Sequence) -> Callable[[], Cluster]:
    """Resolve a cluster factory; non-empty ``args`` select a
    parameterized factory-of-factories (e.g. the seeded random cluster)."""
    obj = resolve_ref(ref)
    return obj(*args) if args else obj


def _resolve_suite(ref: str, args: Sequence) -> List[TestCase]:
    return list(resolve_ref(ref)(*args))


def _oracle_names(cluster: Cluster, requested: Optional[Sequence[str]]) -> List[str]:
    """The signals the differential oracle traces.

    Explicit request wins; then the system's declared
    ``MUTATION_ORACLE_SIGNALS`` (observable boundary outputs — a
    boundary oracle is what makes criterion comparison meaningful);
    finally every driven signal (small generated clusters).
    """
    if requested:
        names = list(requested)
    else:
        declared = getattr(cluster, "MUTATION_ORACLE_SIGNALS", None)
        names = list(declared) if declared else [
            s.name for s in cluster.signals if s.driver is not None
        ]
    for name in names:
        if name not in cluster._signals:
            raise ValueError(
                f"oracle signal {name!r} does not exist in cluster "
                f"{cluster.name!r}"
            )
    return names


# -- single simulations --------------------------------------------------------


def _attach_tracer(cluster: Cluster, oracle: Sequence[str]) -> Tracer:
    tracer = Tracer()
    for name in oracle:
        tracer.trace(cluster._signals[name], name)
    return tracer


def _run_baseline(
    factory: Callable[[], Cluster],
    tc: TestCase,
    oracle: Sequence[str],
    engine: str,
) -> TraceMap:
    cluster = factory()
    tc.apply(cluster)
    tracer = _attach_tracer(cluster, oracle)
    sim = Simulator(cluster, engine=engine)
    sim.run(tc.duration)
    sim.finish()
    return {name: tracer.samples(name) for name in oracle}


def compute_baselines(
    factory: Callable[[], Cluster],
    testcases: Sequence[TestCase],
    oracle: Sequence[str],
    engine: str,
) -> Dict[str, TraceMap]:
    """Reference traces of the unmutated system, one entry per testcase."""
    return {tc.name: _run_baseline(factory, tc, oracle, engine) for tc in testcases}


def traces_diverge(a: TraceMap, b: TraceMap, tolerance: float) -> bool:
    """Whether two trace maps differ beyond ``tolerance``.

    Any shape difference (missing signal, extra/missing samples,
    shifted timestamps) is a divergence; NaN equals NaN (a mutant that
    reproduces the baseline NaN-for-NaN did not change behaviour).
    """
    if a.keys() != b.keys():
        return True
    for name, rows_a in a.items():
        rows_b = b[name]
        if len(rows_a) != len(rows_b):
            return True
        for (ta, va), (tb, vb) in zip(rows_a, rows_b):
            if ta != tb:
                return True
            a_nan = isinstance(va, float) and va != va
            b_nan = isinstance(vb, float) and vb != vb
            if a_nan or b_nan:
                if a_nan != b_nan:
                    return True
                continue
            if va == vb:
                continue
            try:
                if abs(va - vb) > tolerance:
                    return True
            except TypeError:
                return True
    return False


def run_mutant(
    spec: MutantSpec,
    factory: Callable[[], Cluster],
    testcases: Sequence[TestCase],
    baselines: Dict[str, TraceMap],
    oracle: Sequence[str],
    engine: str,
    tolerance: float,
    budget_seconds: Optional[float] = DEFAULT_BUDGET_SECONDS,
) -> MutantOutcome:
    """Execute one mutant against the whole suite and classify it.

    Every testcase always runs (no early exit on the first kill): the
    criterion-vs-score report needs the complete kill row, and the
    matrix must not depend on execution order or timing.
    """
    t0 = time.perf_counter()
    killed_by: List[str] = []
    for tc in testcases:
        cluster = factory()
        try:
            apply_mutant(cluster, spec)
            tc.apply(cluster)
            tracer = _attach_tracer(cluster, oracle)
            sim = Simulator(cluster, engine=engine)
            sim.initialize()
        except MutantNotApplicable:
            return MutantOutcome(spec, "nonviable", (), False, time.perf_counter() - t0)
        except Exception:
            # Elaboration rejected the mutated cluster: nonviable, and
            # deterministically so for every testcase of the suite.
            return MutantOutcome(spec, "nonviable", (), False, time.perf_counter() - t0)
        try:
            sim.run(tc.duration)
            sim.finish()
            traces = {name: tracer.samples(name) for name in oracle}
        except Exception:
            # The mutated behaviour crashed at runtime: observable
            # failure, so this testcase kills the mutant.
            killed_by.append(tc.name)
            continue
        if traces_diverge(baselines[tc.name], traces, tolerance):
            killed_by.append(tc.name)
    seconds = time.perf_counter() - t0
    timed_out = budget_seconds is not None and seconds > budget_seconds
    status = "killed" if killed_by else "survived"
    return MutantOutcome(spec, status, tuple(killed_by), timed_out, seconds)


# -- lockstep batched execution ------------------------------------------------


def _row_diverges(row_a: tuple, row_b: tuple, tolerance: float) -> bool:
    """The per-row predicate of :func:`traces_diverge`, factored out so
    the batched path's incremental check is the same code the serial
    verdict runs."""
    ta, va = row_a
    tb, vb = row_b
    if ta != tb:
        return True
    a_nan = isinstance(va, float) and va != va
    b_nan = isinstance(vb, float) and vb != vb
    if a_nan or b_nan:
        return a_nan != b_nan
    if va == vb:
        return False
    try:
        return abs(va - vb) > tolerance
    except TypeError:
        return True


def _check_divergence(member, baseline: TraceMap, tolerance: float) -> bool:
    """Incrementally compare a member's fresh trace rows against the
    baseline.  Returns True on (monotone) divergence.

    The divergence verdict of a testcase is a pure prefix property:
    once any row differs beyond tolerance — or the mutant produced more
    rows than the baseline — no later sample can un-kill the mutant, so
    the member can retire immediately (the batch engine's early-exit
    mask for divergence).
    """
    cursors = member.payload["cursors"]
    rows_map = member.traces.trace_map()
    for name, rows in rows_map.items():
        base_rows = baseline[name]
        i = cursors[name]
        n_base = len(base_rows)
        while i < len(rows):
            if i >= n_base or _row_diverges(base_rows[i], rows[i], tolerance):
                return True
            i += 1
        cursors[name] = i
    return False


def compute_baselines_batched(
    factory: Callable[[], Cluster],
    testcases: Sequence[TestCase],
    oracle: Sequence[str],
    batch_size: int,
    screen: Optional[Dict[str, Any]] = None,
) -> Dict[str, TraceMap]:
    """Batched counterpart of :func:`compute_baselines` (block engine,
    deferred traces); rows are identical to the serial tracer's.

    When ``screen`` (a dict) is passed, it is filled with per-testcase
    :class:`~repro.mutation.screen.TcScreenData` — the deferred traces
    then cover *every* driven signal (not just the oracle), recording
    the full baseline token streams the mutant screener replays
    against.
    """
    from ..tdf.engine.batch import BatchMember, DeferredTraces, run_batch
    from .screen import collect_tc_screen_data, driven_signal_names

    baselines: Dict[str, TraceMap] = {}
    time_memo: Dict[int, Any] = {}
    for start in range(0, len(testcases), max(batch_size, 1)):
        chunk = testcases[start : start + max(batch_size, 1)]
        members = []
        for tc in chunk:
            cluster = factory()
            tc.apply(cluster)
            extra = []
            if screen is not None:
                seen = set(oracle)
                for n in driven_signal_names(cluster):
                    if n not in seen:
                        # Screen-only signals need raw token values, not
                        # timestamped rows: pin their retention floor so
                        # the window GC keeps every token and read the
                        # buffers once at the end, skipping per-window
                        # row reconstruction entirely.
                        cluster._signals[n]._retain_from = 0
                        extra.append(n)
            traces = DeferredTraces(cluster, list(oracle), time_memo)
            sim = Simulator(cluster, engine="block")
            sim.initialize()
            member = BatchMember(tc.name, sim, sim.now + tc.duration, traces=traces)
            member.payload["screen_raw"] = extra
            members.append(member)
        run_batch(members, time_memo=time_memo, label="mutation.baseline")
        for member in members:
            member.sim.finish()
            baselines[member.key] = {
                name: member.traces.samples(name) for name in oracle
            }
            if screen is not None:
                signals = member.sim.cluster._signals
                raw = {
                    name: list(signals[name]._tokens)
                    for name in member.payload["screen_raw"]
                }
                screen[member.key] = collect_tc_screen_data(
                    member.sim, member.traces.trace_map(), raw
                )
    return baselines


def run_mutants_batched(
    indexed_specs: Sequence[Tuple[int, MutantSpec]],
    factory: Callable[[], Cluster],
    testcases: Sequence[TestCase],
    baselines: Dict[str, TraceMap],
    oracle: Sequence[str],
    tolerance: float,
    budget_seconds: Optional[float],
    batch_size: int,
    telemetry=None,
    screen_data: Optional[Dict[str, Any]] = None,
) -> Dict[int, MutantOutcome]:
    """Execute mutants through the lockstep batch engine.

    Each batch member is one ``(mutant, testcase)`` simulation; mutants
    are chunked so a chunk's members fill ``batch_size`` lockstep
    slots.  Verdict semantics are exactly the serial
    :func:`run_mutant`'s — elaboration failure at *any* testcase makes
    the whole mutant nonviable, a runtime exception or a trace
    divergence adds the testcase to ``killed_by`` — with one
    performance addition: a member whose oracle trace already diverged
    retires at the next window boundary instead of simulating out the
    clock (the verdict is monotone, so the kill matrix is unchanged).

    ``screen_data`` (per-testcase baseline recordings from
    :func:`compute_baselines_batched`) enables mutant screening: a
    ``(mutant, testcase)`` pair whose mutated module provably
    reproduces the baseline streams is marked survived without a full
    simulation; inconclusive pairs fall back to the lockstep run (see
    :mod:`repro.mutation.screen`).
    """
    from ..tdf.engine.batch import BatchMember, DeferredTraces, run_batch
    from .screen import DIRTY as SCREEN_DIRTY
    from .screen import IDENTICAL as SCREEN_IDENTICAL
    from .screen import screen_mutant_tc

    tel = telemetry if telemetry is not None else get_telemetry()
    outcomes: Dict[int, MutantOutcome] = {}
    per_chunk = max(1, batch_size // max(len(testcases), 1))
    time_memo: Dict[int, Any] = {}
    oracle_set = frozenset(oracle)

    def on_window(member) -> Optional[bool]:
        payload = member.payload
        if _check_divergence(member, baselines[payload["tc"]], tolerance):
            payload["diverged"] = True
            return False
        return None

    for start in range(0, len(indexed_specs), per_chunk):
        chunk = indexed_specs[start : start + per_chunk]
        with tel.span(
            "mutation.batch",
            mutants=len(chunk),
            members=len(chunk) * len(testcases),
        ):
            members = []
            build_seconds: Dict[int, float] = {}
            nonviable: Dict[int, bool] = {}
            screened = 0
            for index, spec in chunk:
                t0 = time.perf_counter()
                spec_members = []
                try:
                    for tc in testcases:
                        cluster = factory()
                        apply_mutant(cluster, spec)
                        tc.apply(cluster)
                        sim = None
                        if screen_data is not None:
                            data = screen_data.get(tc.name)
                            if data is not None:
                                sim = Simulator(cluster, engine="block")
                                sim.initialize()
                                verdict = screen_mutant_tc(
                                    sim, spec.target, data, time_memo,
                                    oracle=oracle_set,
                                )
                                if verdict == SCREEN_IDENTICAL:
                                    # Provably identical to the baseline
                                    # for this testcase: survived, no
                                    # member needed.
                                    screened += 1
                                    continue
                                if verdict == SCREEN_DIRTY:
                                    # The replay consumed this cluster —
                                    # rebuild it for the full run.  A
                                    # clean verdict reuses cluster and
                                    # simulator as-is.
                                    cluster = factory()
                                    apply_mutant(cluster, spec)
                                    tc.apply(cluster)
                                    sim = None
                        traces = DeferredTraces(cluster, oracle, time_memo)
                        if sim is None:
                            sim = Simulator(cluster, engine="block")
                            sim.initialize()
                        spec_members.append(
                            BatchMember(
                                (index, tc.name),
                                sim,
                                sim.now + tc.duration,
                                traces=traces,
                                payload={
                                    "index": index,
                                    "tc": tc.name,
                                    "diverged": False,
                                    "cursors": {name: 0 for name in oracle},
                                },
                            )
                        )
                except Exception:
                    # Same rule as the serial path (MutantNotApplicable
                    # or any elaboration error): a mutant that cannot be
                    # applied or elaborated for any testcase is
                    # nonviable for the whole suite.
                    nonviable[index] = True
                    outcomes[index] = MutantOutcome(
                        spec, "nonviable", (), False, time.perf_counter() - t0
                    )
                    continue
                members.extend(spec_members)
                build_seconds[index] = time.perf_counter() - t0

            if screen_data is not None and getattr(tel, "enabled", False):
                tel.metrics.counter("mutation.screened_identical").inc(screened)
                tel.metrics.counter("mutation.screen_fallback").inc(len(members))

            if members:
                run_batch(
                    members,
                    on_window=on_window,
                    raise_errors=False,
                    time_memo=time_memo,
                    label="mutation",
                )

            killed_by: Dict[int, List[str]] = {}
            seconds: Dict[int, float] = dict(build_seconds)
            for member in members:
                index = member.payload["index"]
                tc_name = member.payload["tc"]
                seconds[index] = seconds.get(index, 0.0) + member.seconds
                killed = False
                if member.status == "error" or member.payload["diverged"]:
                    # Runtime crash or already-diverged prefix: killed,
                    # exactly as the serial exception / full-trace diff
                    # would conclude.
                    killed = True
                else:
                    try:
                        member.sim.finish()
                    except Exception:
                        killed = True
                    else:
                        baseline = baselines[tc_name]
                        if _check_divergence(member, baseline, tolerance):
                            killed = True
                        else:
                            # Prefix clean: any length mismatch left is a
                            # truncated trace, which diverges.
                            cursors = member.payload["cursors"]
                            for name, base_rows in baseline.items():
                                if cursors[name] != len(base_rows):
                                    killed = True
                                    break
                if killed:
                    killed_by.setdefault(index, []).append(tc_name)

            for index, spec in chunk:
                if nonviable.get(index):
                    continue
                kills = killed_by.get(index, [])
                # killed_by in suite order, as the serial loop emits it.
                ordered = tuple(
                    tc.name for tc in testcases if tc.name in set(kills)
                )
                spent = seconds.get(index, 0.0)
                timed_out = budget_seconds is not None and spent > budget_seconds
                status = "killed" if ordered else "survived"
                outcomes[index] = MutantOutcome(
                    spec, status, ordered, timed_out, spent
                )
    return outcomes


def _sample_specs(
    specs: Sequence[MutantSpec], max_mutants: Optional[int], seed: int
) -> List[MutantSpec]:
    """Deterministic (seeded) sample, preserving enumeration order."""
    if max_mutants is None or len(specs) <= max_mutants:
        return list(specs)
    if max_mutants < 0:
        raise ValueError(f"max_mutants must be >= 0, got {max_mutants}")
    picked = sorted(random.Random(seed).sample(range(len(specs)), max_mutants))
    return [specs[i] for i in picked]


# -- parallel plumbing ---------------------------------------------------------


@dataclass(frozen=True)
class _MutationJob:
    """One worker's shard of mutant indices, in picklable form.

    The worker regenerates the identical sampled spec list from
    ``(factory_ref, operators, seed, max_mutants)`` — shipping indices
    instead of specs keeps the job tiny and makes any divergence
    between parent and worker enumeration fail loudly (index error)
    instead of silently running a different mutant.
    """

    factory_ref: str
    factory_args: tuple
    suite_ref: str
    suite_args: tuple
    operators: Tuple[str, ...]
    seed: int
    max_mutants: Optional[int]
    indices: Tuple[int, ...]
    tolerance: float
    engine: str
    oracle_signals: Optional[Tuple[str, ...]]
    budget_seconds: Optional[float]
    record_telemetry: bool
    batch_size: Optional[int] = None


def _mutation_worker(job: _MutationJob) -> Tuple[List[Tuple[int, MutantOutcome]], List[dict], float]:
    t0 = time.perf_counter()
    factory = _resolve_factory(job.factory_ref, job.factory_args)
    testcases = _resolve_suite(job.suite_ref, job.suite_args)
    with telemetry_session(Telemetry() if job.record_telemetry else None) as tel:
        specs = _sample_specs(
            generate_mutants(factory(), list(job.operators)), job.max_mutants, job.seed
        )
        oracle = _oracle_names(factory(), job.oracle_signals)
        if job.batch_size is not None:
            screen: Dict[str, Any] = {}
            baselines = compute_baselines_batched(
                factory, testcases, oracle, job.batch_size, screen=screen
            )
            batched = run_mutants_batched(
                [(index, specs[index]) for index in job.indices],
                factory, testcases, baselines, oracle,
                job.tolerance, job.budget_seconds, job.batch_size, tel,
                screen_data=screen or None,
            )
            results = [(index, batched[index]) for index in job.indices]
        else:
            baselines = compute_baselines(factory, testcases, oracle, job.engine)
            results = [
                (
                    index,
                    run_mutant(
                        specs[index], factory, testcases, baselines, oracle,
                        job.engine, job.tolerance, job.budget_seconds,
                    ),
                )
                for index in job.indices
            ]
        payload = tel.metrics.raw_records() if job.record_telemetry else []
    return results, payload, time.perf_counter() - t0


# -- entry point ---------------------------------------------------------------


def run_mutation(
    factory_ref: str,
    suite_ref: str,
    config: Optional["DftConfig"] = None,
    *,
    factory_args: Sequence = (),
    suite_args: Sequence = (),
    operators: Optional[Sequence[str]] = None,
    max_mutants: Optional[int] = None,
    oracle_signals: Optional[Sequence[str]] = None,
) -> MutationRun:
    """Run a full mutation analysis and return the kill matrix.

    ``factory_ref`` / ``suite_ref`` are importable ``"module:attr"``
    references (see :mod:`repro.exec.refs`); ``factory_args`` /
    ``suite_args``, when non-empty, are applied to the resolved object
    to obtain the actual factory/suite (the seeded random cluster uses
    this).  Both serial and parallel paths build everything from the
    references, so the kill matrix cannot depend on the backend.

    ``config`` carries seed / tolerance / workers / engine /
    budget_seconds / telemetry (see :class:`repro.core.DftConfig`); a
    ``budget_seconds`` of ``None`` (the config default) means the
    standard :data:`DEFAULT_BUDGET_SECONDS` per-mutant budget — pass
    ``float("inf")`` for an unbounded run.  The config is the only
    configuration path (API v1): the removed per-call keyword
    arguments now raise ``TypeError``.
    """
    from ..core.config import DftConfig

    cfg = config if config is not None else DftConfig()
    seed = cfg.seed
    tolerance = cfg.tolerance
    workers = cfg.workers if cfg.workers is not None else 1
    engine = cfg.engine
    budget_seconds = (
        cfg.budget_seconds
        if cfg.budget_seconds is not None
        else DEFAULT_BUDGET_SECONDS
    )
    tel = cfg.telemetry if cfg.telemetry is not None else get_telemetry()
    factory = _resolve_factory(factory_ref, factory_args)
    testcases = _resolve_suite(suite_ref, suite_args)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if cfg.batch_size is not None and engine == "interp":
        raise ValueError(
            "batch_size requires the block engine (--engine block/auto)"
        )
    op_names = list(operators) if operators else None
    with tel.span(
        "mutation", factory=factory_ref, workers=workers, testcases=len(testcases)
    ):
        all_specs = generate_mutants(factory(), op_names)
        specs = _sample_specs(all_specs, max_mutants, seed)
        oracle = _oracle_names(factory(), oracle_signals)
        if tel.enabled:
            tel.metrics.counter("mutation.generated").inc(len(all_specs))
            tel.metrics.counter("mutation.sampled").inc(len(specs))

        suite_names = [tc.name for tc in testcases]
        history = cfg.run_history()
        fingerprint: Optional[str] = None
        if history is not None:
            from ..analysis.cache import fingerprint_cluster

            fingerprint = fingerprint_cluster(factory())
        # Warm start: verdicts are pure functions of (cluster, suite,
        # spec, engine, tolerance), so outcomes recorded by an earlier
        # run with the same fingerprint / config hash / suite can be
        # replayed from the history kill matrix instead of re-executed.
        reused: Dict[int, MutantOutcome] = {}
        if cfg.warm_start and history is not None:
            from ..obs.store import suite_sha as _suite_sha

            prior = history.latest(
                kind="mutation",
                fingerprint=fingerprint,
                config_hash=cfg.config_hash(),
                suite=_suite_sha(suite_names),
            )
            payload = (prior or {}).get("mutation") or {}
            if payload.get("oracle") == list(oracle):
                matrix = payload.get("kill_matrix") or {}
                for index, spec in enumerate(specs):
                    entry = matrix.get(spec.mutant_id)
                    if entry and entry.get("status"):
                        reused[index] = MutantOutcome(
                            spec,
                            entry["status"],
                            tuple(entry.get("killed_by") or ()),
                            False,
                            0.0,
                        )
            if tel.enabled and reused:
                tel.metrics.counter("mutation.warm_reused").inc(len(reused))
        pending = [i for i in range(len(specs)) if i not in reused]
        from ..tdf.engine.batch import resolve_batch_size

        batch = resolve_batch_size(
            cfg.batch_size, len(pending) * max(len(testcases), 1)
        )

        by_index: Dict[int, MutantOutcome] = dict(reused)
        if not pending:
            pass
        elif workers <= 1 or len(pending) < 2:
            if batch is not None:
                screen: Dict[str, Any] = {}
                with tel.span("mutation.baseline", testcases=len(testcases)):
                    baselines = compute_baselines_batched(
                        factory, testcases, oracle, batch, screen=screen
                    )
                by_index.update(
                    run_mutants_batched(
                        [(index, specs[index]) for index in pending],
                        factory, testcases, baselines, oracle,
                        tolerance, budget_seconds, batch, tel,
                        screen_data=screen or None,
                    )
                )
            else:
                with tel.span("mutation.baseline", testcases=len(testcases)):
                    baselines = compute_baselines(factory, testcases, oracle, engine)
                for index in pending:
                    spec = specs[index]
                    with tel.span("mutation.mutant", mutant=spec.mutant_id):
                        by_index[index] = run_mutant(
                            spec, factory, testcases, baselines, oracle,
                            engine, tolerance, budget_seconds,
                        )
        else:
            shards = round_robin_shards(pending, workers)
            jobs = [
                _MutationJob(
                    factory_ref=factory_ref,
                    factory_args=tuple(factory_args),
                    suite_ref=suite_ref,
                    suite_args=tuple(suite_args),
                    operators=tuple(op_names) if op_names else tuple(),
                    seed=seed,
                    max_mutants=max_mutants,
                    indices=tuple(shard),
                    tolerance=tolerance,
                    engine=engine,
                    oracle_signals=tuple(oracle_signals) if oracle_signals else None,
                    budget_seconds=budget_seconds,
                    record_telemetry=tel.enabled,
                    batch_size=batch,
                )
                for shard in shards
            ]
            with tel.span("mutation.parallel", workers=len(jobs), mutants=len(pending)):
                with _Pool(max_workers=len(jobs)) as pool:
                    results = list(pool.map(_mutation_worker, jobs))
                for worker, (entries, payload, wall) in enumerate(results):
                    for index, outcome in entries:
                        by_index[index] = outcome
                    if tel.enabled:
                        tel.metrics.merge_raw(payload)
                        tel.metrics.histogram("mutation.worker_seconds").observe(wall)
                        tel.metrics.counter(
                            "mutation.worker_mutants", worker=worker
                        ).inc(len(entries))
        outcomes = [by_index[i] for i in range(len(specs))]

        if tel.enabled:
            tel.metrics.counter("mutation.viable").inc(
                sum(1 for o in outcomes if o.status != "nonviable")
            )
            tel.metrics.counter("mutation.killed").inc(
                sum(1 for o in outcomes if o.status == "killed")
            )
            tel.metrics.counter("mutation.timeout").inc(
                sum(1 for o in outcomes if o.timed_out)
            )

    run = MutationRun(
        factory_ref=factory_ref,
        suite_ref=suite_ref,
        operators=op_names if op_names else list(ALL_OPERATORS),
        seed=seed,
        engine=engine,
        workers=workers,
        tolerance=tolerance,
        generated=len(all_specs),
        specs=specs,
        outcomes=outcomes,
        testcase_names=[tc.name for tc in testcases],
        oracle_signals=list(oracle),
    )
    if history is not None:
        from ..obs.store import build_record

        record = build_record(
            "mutation",
            system=factory_ref,
            fingerprint=fingerprint,
            config_hash=cfg.config_hash(),
            suite_names=suite_names,
            telemetry=tel if tel.enabled else None,
            extra={
                "mutation": {
                    "score": round(run.mutation_score, 4),
                    "generated": run.generated,
                    "sampled": len(specs),
                    "killed": run.killed,
                    "survived": run.survived,
                    "nonviable": run.nonviable,
                    "total": run.viable,
                    "reused": len(reused),
                    "oracle": list(oracle),
                    "kill_matrix": {
                        outcome.spec.mutant_id: {
                            "status": outcome.status,
                            "killed_by": list(outcome.killed_by),
                        }
                        for outcome in outcomes
                    },
                }
            },
        )
        try:
            history.append(record)
        except OSError:
            pass
    return run
