"""Mutant screening: replay only the mutated module against baseline streams.

The lockstep batch engine (:mod:`repro.tdf.engine.batch`) removes the
per-window dispatch overhead of running many ``(mutant, testcase)``
simulations, and divergence-based early exit retires *killed* members
after a handful of windows — but a **surviving** mutant still simulates
the whole cluster for the full testcase duration, and most mutants
survive most testcases.  Those runs are almost entirely redundant: only
one module's processing differs from the baseline.

Screening exploits the determinism of static TDF.  For a mutant whose
target module ``X`` has the same elaboration fingerprint as the
baseline (module timesteps plus every port's rate/delay/timestep —
:meth:`Simulator._attribute_key`), the full-cluster schedule is
identical, so ``X`` fires at exactly the baseline's activation times
and its inputs are exactly the baseline's token streams *as long as its
own outputs match the baseline*.  That gives an induction over the
global firing order: replay ``X`` alone, feeding it the recorded
baseline input streams, and compare every produced token against the
recorded baseline output streams.

* Every token equal and no dynamic attribute request filed → the full
  run is **provably identical** to the baseline: the mutant survives
  this testcase without simulating the other modules at all.
* Anything else — a mismatching token, an exception from the mutated
  processing, a ``request_rate``/``request_timestep`` call, a
  fingerprint mismatch, a baseline that re-elaborated — is
  **inconclusive**: the caller falls back to the full lockstep
  simulation, which owns the verdict.  Screening therefore never
  decides *killed*; it only ever proves *identical*, so the kill
  matrix is byte-identical to the serial executor's by construction.

The replay itself reuses the block compiler's generic firing op
(:func:`repro.tdf.engine.compiler._make_generic_op`): the same
interpreted-firing semantics the full engine uses for stateful custom
modules, driven here at ``j * timestep`` for each firing ``j``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..tdf.engine.compiler import _make_generic_op
from ..tdf.library.sinks import NullSink
from ..tdf.module import TdfModule
from ..tdf.ports import Port
from ..tdf.time import ScaTime

__all__ = [
    "CLEAN",
    "DIRTY",
    "IDENTICAL",
    "TcScreenData",
    "collect_tc_screen_data",
    "screen_fingerprint",
    "screen_mutant_tc",
]


class TcScreenData:
    """Per-testcase baseline recording needed to screen mutants.

    ``streams`` maps every *driven* signal name to its full baseline
    token-value sequence (output-delay priming values included, so
    token index ``i`` is the signal's ``i``-th write).  ``fingerprint``
    is the baseline simulator's post-run attribute key and ``periods``
    its period count; ``eligible`` is False when the baseline
    re-elaborated mid-run (dynamic TDF), which invalidates the fixed
    firing grid the replay assumes.
    """

    __slots__ = ("streams", "periods", "fingerprint", "eligible")

    def __init__(
        self,
        streams: Dict[str, List[Any]],
        periods: int,
        fingerprint: Tuple,
        eligible: bool,
    ) -> None:
        self.streams = streams
        self.periods = periods
        self.fingerprint = fingerprint
        self.eligible = eligible


def screen_fingerprint(sim) -> Tuple:
    """Elaboration fingerprint for screening eligibility.

    :meth:`Simulator._attribute_key` with one normalization: the delay
    of an input port bound to an *undriven* signal is zeroed.  Reads
    from an undriven signal yield the signal's initial value regardless
    of the cursor position (use-without-def semantics), and the
    scheduler never waits on an undriven signal, so such a delay is
    behaviourally inert — a mutant differing only there still executes
    the baseline's schedule and streams exactly.
    """
    key = sim._attribute_key()
    undriven = set()
    for module in sim.cluster.modules:
        for port in module.in_ports():
            sig = port.signal
            if sig is not None and sig.driver is None:
                undriven.add((module.name, port.name))
    if not undriven:
        return key
    normalized = []
    for mod_name, req_ts, ports in key:
        normalized.append(
            (
                mod_name,
                req_ts,
                tuple(
                    (name, rate, 0 if (mod_name, name) in undriven else delay, ts)
                    for name, rate, delay, ts in ports
                ),
            )
        )
    return tuple(normalized)


def collect_tc_screen_data(
    sim,
    trace_map: Dict[str, List[tuple]],
    raw: Optional[Dict[str, List[Any]]] = None,
) -> TcScreenData:
    """Build a :class:`TcScreenData` from a finished baseline member.

    ``trace_map`` and ``raw`` together must cover every driven signal
    of the baseline cluster.  ``trace_map`` holds deferred-trace rows
    (the value stream is each row's second element); ``raw`` holds
    plain token-value lists read straight out of retained signal
    buffers — signals nothing but the screener consumes skip row
    reconstruction entirely.
    """
    streams = {name: [row[1] for row in rows] for name, rows in trace_map.items()}
    if raw:
        streams.update(raw)
    return TcScreenData(
        streams=streams,
        periods=sim.periods_run,
        fingerprint=screen_fingerprint(sim),
        eligible=sim.reelaborations == 0,
    )


def driven_signal_names(cluster) -> List[str]:
    """Names of every driven signal, in declaration order."""
    return [
        name for name, sig in cluster._signals.items() if sig.driver is not None
    ]


def _tokens_equal(a: Any, b: Any) -> bool:
    """Exact token equality, with NaN equal to NaN.

    Matches the divergence predicate's treatment of NaN (two NaNs are
    not a divergence), so a screened-identical stream is exactly a
    stream the full-trace diff would call clean at tolerance 0 — and
    identical inputs make every downstream firing reproduce the
    baseline bit-for-bit.
    """
    if a is b:
        return True
    try:
        if a == b:
            return True
        # Both NaN (the only values unequal to themselves).
        return a != a and b != b
    except Exception:
        return False


#: Verdicts of :func:`screen_mutant_tc`.
IDENTICAL = "identical"  #: provably equal to the baseline — survived
CLEAN = "clean"  #: inconclusive, cluster untouched — reusable for the full run
DIRTY = "dirty"  #: inconclusive, replay mutated state — rebuild before running


#: Value types a module may hold as user state for the replay to be
#: *restorable*: rebinding the attribute restores it exactly, because
#: nothing can mutate such a value in place.
_IMMUTABLE_SCALARS = (type(None), bool, int, float, complex, str, bytes, ScaTime)

#: Module ``__dict__`` keys owned by the kernel.  A firing only ever
#: rebinds these (``_time``, ``activation_count``, ``_pending_timestep``)
#: or mutates the one dict the restore handles explicitly
#: (``_pending_rates``); the rest it never touches.
_KERNEL_KEYS = frozenset(
    {
        "name",
        "cluster",
        "timestep",
        "activation_count",
        "_ports",
        "_processing_fn",
        "_in_ports_cache",
        "_out_ports_cache",
        "_time",
        "_module_timestep_request",
        "_pending_timestep",
        "_pending_rates",
    }
)


def _restorable_value(value: Any) -> bool:
    if isinstance(value, _IMMUTABLE_SCALARS):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(_restorable_value(item) for item in value)
    return False


def _snapshot(module, in_ports, out_ports):
    """Snapshot everything a replay of ``module`` can mutate.

    Returns ``None`` when a faithful restore cannot be guaranteed:
    user state holding a mutable value (a list the processing appends
    to would survive a shallow restore), a processing body that names
    ``cluster`` (it could reach sibling modules the snapshot does not
    cover), or hooks/observers on the module's ports and signals (the
    replay would fire them; the full run would then fire them again).
    Everything else a firing touches is enumerable — module attribute
    bindings, the pending-rates dict, port activation state, and the
    token buffers/cursors of the module's own signals — and is saved
    here so :func:`_restore` can rewind the cluster to its freshly
    initialized state.
    """
    try:
        processing = module.resolved_processing()
        code = getattr(processing, "__func__", processing).__code__
    except AttributeError:
        return None
    if "cluster" in code.co_names:
        return None
    state = module.__dict__
    ports = module._ports
    for key, value in state.items():
        if key in _KERNEL_KEYS:
            continue
        # The port attributes themselves (``self.ip_x = TdfIn()`` lands
        # in ``__dict__`` too): kernel objects whose mutated fields the
        # restore rewinds explicitly.
        if isinstance(value, Port) and ports.get(key) is value:
            continue
        if not _restorable_value(value):
            return None
    for port in in_ports:
        if port._read_hooks:
            return None
    for port in out_ports:
        if port._write_hooks or port.signal._write_observers:
            return None
    snap_ins = []
    for port in in_ports:
        sig = port.signal
        snap_ins.append(
            (
                port,
                sig,
                sig._tokens,
                sig._base_index,
                sig._write_count,
                sig.last_write_time,
                sig._cursors[id(port)],
            )
        )
    snap_outs = []
    for port in out_ports:
        sig = port.signal
        snap_outs.append(
            (
                port,
                sig,
                list(sig._tokens),
                sig._base_index,
                sig._write_count,
                sig.last_write_time,
                list(port._pending),
                port._flushed,
                port._last_value,
                port._activation_time,
            )
        )
    return (module, dict(state), dict(module._pending_rates), snap_ins, snap_outs)


def _restore(snap) -> None:
    """Rewind a consumed replay back to the post-``initialize()`` state."""
    module, snap_state, snap_rates, snap_ins, snap_outs = snap
    state = module.__dict__
    state.clear()
    state.update(snap_state)
    rates = module._pending_rates
    rates.clear()
    rates.update(snap_rates)
    for port, sig, tokens, base, write_count, lwt, cursor in snap_ins:
        port._in_activation = False
        sig._tokens = tokens
        sig._base_index = base
        sig._write_count = write_count
        sig.last_write_time = lwt
        sig._cursors[id(port)] = cursor
    for (
        port,
        sig,
        content,
        base,
        write_count,
        lwt,
        pending,
        flushed,
        last_value,
        activation_time,
    ) in snap_outs:
        sig._tokens = deque(content)
        sig._base_index = base
        sig._write_count = write_count
        sig.last_write_time = lwt
        port._pending = pending
        port._flushed = flushed
        port._last_value = last_value
        port._in_activation = False
        port._activation_time = activation_time


def screen_mutant_tc(
    sim,
    target_name: str,
    data: TcScreenData,
    time_memo: Optional[Dict[int, Any]] = None,
    oracle: Optional[frozenset] = None,
) -> str:
    """Replay the mutated module alone against the baseline streams.

    ``sim`` must be a freshly ``initialize()``-d simulator over the
    *mutated* cluster with the testcase applied.  Returns one of

    * :data:`IDENTICAL` — every produced token matched; the full run is
      provably the baseline's, the mutant survives this testcase.
    * :data:`CLEAN` — inconclusive, cluster pristine: either nothing
      fired (fingerprint or eligibility mismatch), or the replay broke
      off and was rewound from a pre-replay snapshot.  The caller may
      run the full simulation on this very ``sim``.
    * :data:`DIRTY` — the replay broke off (token mismatch, exception,
      dynamic attribute request) and no faithful snapshot was possible:
      signal buffers and module state are consumed, rebuild the cluster
      for the full run.

    Inconclusive never means *killed*: the full lockstep simulation
    owns every verdict the screen cannot prove.
    """
    if not data.eligible:
        return CLEAN
    cluster = sim.cluster
    module = cluster._modules.get(target_name)
    if module is None:
        return CLEAN
    # change_attributes() runs once per period in a live simulation;
    # the replay never calls it, so any override is out of scope.
    if type(module).change_attributes is not TdfModule.change_attributes:
        return CLEAN
    # Identical elaboration fingerprint → identical schedule → the
    # baseline's firing grid and stream alignment hold for the mutant.
    if screen_fingerprint(sim) != data.fingerprint:
        return CLEAN
    schedule = sim.schedule
    if schedule is None:
        return CLEAN
    reps = schedule.repetitions.get(target_name)
    ts = schedule.module_timesteps.get(target_name)
    if reps is None or ts is None:
        return CLEAN
    streams = data.streams

    # Output signals hold only their priming tokens so far (written by
    # initialization from unmutated attributes, hence equal to the
    # baseline's); everything produced past that point is compared.
    #
    # An output is *unobservable* when it is not an oracle signal, has
    # no write observers, and every reader is exactly a NullSink —
    # whose processing reads and discards the value unconditionally, so
    # no token written there can ever influence the verdict.  Such
    # outputs are skipped: a mutant that only perturbs a sink-bound
    # debug stream still screens as identical, matching the serial
    # verdict (the oracle diff never sees that signal either).
    oracle_set = oracle if oracle is not None else frozenset()
    outs = []
    for port in module.out_ports():
        sig = port.signal
        if sig is None:
            return CLEAN
        if (
            sig.name not in oracle_set
            and not sig._write_observers
            and all(type(r.module) is NullSink for r in sig.readers)
        ):
            continue
        stream = streams.get(sig.name)
        if stream is None or sig._write_count > len(stream):
            return CLEAN
        outs.append([sig, stream, sig._write_count])

    for port in module.in_ports():
        sig = port.signal
        if sig is None:
            return CLEAN
        if sig.driver is not None and sig.name not in streams:
            return CLEAN

    try:
        op = _make_generic_op(module, 0, time_memo)
    except Exception:
        return CLEAN

    # With a snapshot in hand, an inconclusive replay is *rewound* and
    # reported CLEAN — the caller then runs the full simulation on this
    # very cluster instead of building a new one.  Without one (mutable
    # user state, hooks), inconclusive stays DIRTY.
    snap = _snapshot(module, module.in_ports(), module.out_ports())

    def inconclusive() -> str:
        if snap is None:
            return DIRTY
        _restore(snap)
        return CLEAN

    # Past this point the cluster gets consumed.  Preload every input
    # signal with its full baseline stream: the reader cursor is
    # already at -delay from initialization, and the stream includes
    # output-delay priming tokens, so global token indices line up
    # with the live run exactly.  (Undriven inputs read the signal's
    # initial value in a live run too — nothing to preload.)
    for port in module.in_ports():
        sig = port.signal
        if sig.driver is None:
            continue
        stream = streams[sig.name]
        sig._tokens = deque(stream)
        sig._base_index = 0
        sig._write_count = len(stream)

    # Compared outputs get a plain-list token buffer (they are never
    # garbage-collected during the replay), so whole chunks compare at
    # C speed with list slicing.
    for entry in outs:
        entry[0]._tokens = list(entry[0]._tokens)

    ts_fs = ts.femtoseconds
    total = data.periods * reps
    # Chunks grow geometrically: mismatching mutants usually diverge in
    # their first few firings (a small first chunk catches them after
    # 16 ops), while an identical replay soon reaches large chunks and
    # amortizes the compare passes.
    chunk = 16
    j = 0
    while j < total:
        stop = j + chunk
        if chunk < 1024:
            chunk <<= 2
        if stop > total:
            stop = total
        while j < stop:
            try:
                op(j * ts_fs)
            except Exception:
                # The mutated processing raised.  The full run would
                # raise too (its inputs are identical up to here), but
                # the kill verdict belongs to the full executor —
                # report inconclusive and let it crash there.
                return inconclusive()
            j += 1
        for entry in outs:
            sig, stream, cursor = entry
            wc = sig._write_count
            if wc > len(stream):
                return inconclusive()
            base = sig._base_index
            produced = sig._tokens[cursor - base : wc - base]
            if produced != stream[cursor:wc]:
                # Slow path: NaN compares unequal to itself, so a
                # failed slice compare may still be a clean all-NaN
                # match — recheck token by token.
                for offset, value in enumerate(produced):
                    if not _tokens_equal(value, stream[cursor + offset]):
                        return inconclusive()
            entry[2] = wc
        if module.has_pending_attribute_requests:
            # request_rate()/request_timestep() from the mutated body:
            # the live engine would re-elaborate, breaking the fixed
            # grid this replay assumes.  (Requests stay pending until
            # an engine consumes them, so a per-chunk check sees any
            # request made inside the chunk.)
            return inconclusive()
    for entry in outs:
        if entry[2] != len(entry[1]):
            return inconclusive()
    return IDENTICAL
