"""AST instrumentation of ``processing()`` bodies (paper §V).

The instrumenter rewrites a model's processing source so that every
definition and use reports itself to the :class:`ProbeRuntime` at
execution time, without changing behaviour:

* loads of tracked locals/members are wrapped:
  ``x``  ->  ``__dft_probe__.u(self, 'x', <line>, x)``;
* port accesses are routed through the probe:
  ``self.ip.read(i)``     -> ``__dft_probe__.pr(self, self.ip, <line>, i)``
  ``self.op.write(v, i)`` -> ``__dft_probe__.pw(self, self.op, <line>, v, i)``;
* a ``__dft_probe__.d(self, 'x', <line>)`` statement is appended after
  every assignment (and as the first body statement for loop targets).

All ``<line>`` arguments are *absolute* file lines, so dynamic events
join directly against the static anchors.  The rewritten function is
compiled in a copy of the original function's globals (plus the probe)
and installed on the module instance via ``register_processing`` —
the class and all other instances stay untouched.
"""

from __future__ import annotations

import ast
import types
from typing import Any, Callable, Optional, Set

from ..analysis.astutils import (
    KERNEL_ATTRS,
    SourceInfo,
    assigned_local_names,
    get_source_info,
    port_read_target,
    port_write_target,
    self_attribute,
)
from ..tdf.module import TdfModule

PROBE_NAME = "__dft_probe__"


def _load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def _probe_call(method: str, args: list) -> ast.Call:
    return ast.Call(
        func=ast.Attribute(value=_load(PROBE_NAME), attr=method, ctx=ast.Load()),
        args=args,
        keywords=[],
    )


class _Rewriter(ast.NodeTransformer):
    """Expression/statement transformer for one processing body."""

    def __init__(
        self,
        in_ports: Set[str],
        out_ports: Set[str],
        local_names: Set[str],
        line_offset: int,
    ) -> None:
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.local_names = local_names
        self.line_offset = line_offset

    def _abs(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 1) + self.line_offset

    def _line_const(self, node: ast.AST) -> ast.Constant:
        return ast.Constant(value=self._abs(node))

    # -- expression wrapping ---------------------------------------------------

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.local_names
            and node.id != "self"
        ):
            return ast.copy_location(
                _probe_call(
                    "u",
                    [_load("self"), ast.Constant(node.id), self._line_const(node), node],
                ),
                node,
            )
        return node

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        attr = self_attribute(node)
        if attr is not None:
            if (
                isinstance(node.ctx, ast.Load)
                and attr not in self.in_ports
                and attr not in self.out_ports
                and attr not in KERNEL_ATTRS
            ):
                return ast.copy_location(
                    _probe_call(
                        "u",
                        [_load("self"), ast.Constant(attr), self._line_const(node), node],
                    ),
                    node,
                )
            return node
        node.value = self.visit(node.value)
        return node

    def visit_Call(self, node: ast.Call) -> ast.AST:
        write_target = port_write_target(node)
        if write_target is not None and write_target in self.out_ports:
            args = [self.visit(a) for a in node.args]
            port_expr = node.func.value  # type: ignore[attr-defined]
            return ast.copy_location(
                _probe_call(
                    "pw",
                    [_load("self"), port_expr, self._line_const(node)] + args,
                ),
                node,
            )
        read_target = port_read_target(node)
        if read_target is not None and read_target in self.in_ports:
            args = [self.visit(a) for a in node.args]
            if isinstance(node.func, ast.Attribute) and node.func.attr == "read":
                port_expr = node.func.value
            else:
                port_expr = node.func
            return ast.copy_location(
                _probe_call(
                    "pr",
                    [_load("self"), port_expr, self._line_const(node)] + args,
                ),
                node,
            )
        # Ordinary call: transform callee and arguments, but do not wrap
        # a ``self.helper`` method lookup as a member use.
        if isinstance(node.func, ast.Attribute) and self_attribute(node.func) is not None:
            pass
        else:
            node.func = self.visit(node.func)
        node.args = [self.visit(a) for a in node.args]
        node.keywords = [
            ast.keyword(arg=kw.arg, value=self.visit(kw.value)) for kw in node.keywords
        ]
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return node  # nested functions stay opaque

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    # -- statement rewriting (def probes) -----------------------------------------

    def _def_probes(self, target: ast.AST, line: int) -> list:
        """Probe statements for every tracked name defined by ``target``."""
        probes = []
        for node in ast.walk(target):
            var: Optional[str] = None
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                if node.id in self.local_names:
                    var = node.id
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
                attr = self_attribute(node)
                if attr is not None and attr not in KERNEL_ATTRS:
                    var = attr
            if var is not None:
                probes.append(
                    ast.Expr(
                        value=_probe_call(
                            "d",
                            [_load("self"), ast.Constant(var), ast.Constant(line)],
                        )
                    )
                )
        return probes

    def visit_Assign(self, node: ast.Assign) -> Any:
        node.value = self.visit(node.value)
        # Subscript/attribute chains inside targets may contain loads.
        new_targets = []
        for target in node.targets:
            if isinstance(target, (ast.Subscript,)):
                target.value = self.visit(target.value)
                target.slice = self.visit(target.slice)
            new_targets.append(target)
        node.targets = new_targets
        probes = []
        for target in node.targets:
            probes.extend(self._def_probes(target, self._abs(node)))
        return [node] + probes

    def visit_AnnAssign(self, node: ast.AnnAssign) -> Any:
        if node.value is None:
            return node
        node.value = self.visit(node.value)
        return [node] + self._def_probes(node.target, self._abs(node))

    def visit_AugAssign(self, node: ast.AugAssign) -> Any:
        line = self._abs(node)
        node.value = self.visit(node.value)
        pre = []
        # ``x += e`` uses x before redefining it.
        if isinstance(node.target, ast.Name) and node.target.id in self.local_names:
            pre.append(
                ast.Expr(
                    value=_probe_call(
                        "u",
                        [
                            _load("self"),
                            ast.Constant(node.target.id),
                            ast.Constant(line),
                            ast.Name(id=node.target.id, ctx=ast.Load()),
                        ],
                    )
                )
            )
        else:
            attr = self_attribute(node.target)
            if attr is not None and attr not in KERNEL_ATTRS:
                pre.append(
                    ast.Expr(
                        value=_probe_call(
                            "u",
                            [
                                _load("self"),
                                ast.Constant(attr),
                                ast.Constant(line),
                                ast.Attribute(
                                    value=_load("self"), attr=attr, ctx=ast.Load()
                                ),
                            ],
                        )
                    )
                )
        return pre + [node] + self._def_probes(node.target, line)

    def visit_For(self, node: ast.For) -> Any:
        node.iter = self.visit(node.iter)
        probes = self._def_probes(node.target, self._abs(node))
        node.body = probes + [self.visit(s) for s in node.body]
        node.body = _flatten(node.body)
        node.orelse = _flatten([self.visit(s) for s in node.orelse])
        return node

    def visit_With(self, node: ast.With) -> Any:
        probes = []
        for item in node.items:
            item.context_expr = self.visit(item.context_expr)
            if item.optional_vars is not None:
                probes.extend(self._def_probes(item.optional_vars, self._abs(node)))
        node.body = _flatten(probes + [self.visit(s) for s in node.body])
        return node

    def generic_visit(self, node: ast.AST) -> ast.AST:
        node = super().generic_visit(node)
        # Statement bodies may now contain [stmt, probe, ...] lists from
        # the def-probe insertion; flatten them.  Expression nodes like
        # IfExp also have a ``body`` attribute, but not as a list.
        for attr in ("body", "orelse", "finalbody"):
            value = getattr(node, attr, None)
            if isinstance(value, list):
                setattr(node, attr, _flatten(value))
        return node


def _flatten(stmts: list) -> list:
    flat = []
    for s in stmts:
        if isinstance(s, list):
            flat.extend(s)
        else:
            flat.append(s)
    return flat


def instrument_processing(module: TdfModule, probe: Any) -> Callable[[], None]:
    """Instrument ``module``'s processing callable and install it.

    Returns the previous processing callable registration so the caller
    can restore it (``None`` when the plain method was in use).
    """
    original_registration = module._processing_fn
    fn = module.resolved_processing()
    info = get_source_info(fn)
    in_ports = {p.name for p in module.in_ports()}
    out_ports = {p.name for p in module.out_ports()}
    local_names = assigned_local_names(info.func)

    rewriter = _Rewriter(in_ports, out_ports, local_names, info.line_offset)
    func = info.func
    # Rewrite the body directly: visit_FunctionDef keeps *nested*
    # functions opaque, so the top-level def must not go through it.
    func.body = _flatten([rewriter.visit(stmt) for stmt in func.body])
    func.decorator_list = []
    tree = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(tree)
    # Shift line numbers so tracebacks point at the original file lines.
    ast.increment_lineno(tree, info.line_offset)

    code = compile(tree, info.filename, "exec")
    underlying = fn
    if isinstance(underlying, types.MethodType):
        underlying = underlying.__func__
    namespace = dict(getattr(underlying, "__globals__", {}))
    namespace[PROBE_NAME] = probe
    exec(code, namespace)
    new_fn = namespace[func.name]
    module.register_processing(types.MethodType(new_fn, module))
    return original_registration


def restore_processing(module: TdfModule, previous: Optional[Callable[[], None]]) -> None:
    """Undo :func:`instrument_processing`."""
    module._processing_fn = previous
