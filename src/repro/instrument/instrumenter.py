"""AST instrumentation of ``processing()`` bodies (paper §V).

The instrumenter rewrites a model's processing source so that every
definition and use reports itself to the :class:`ProbeRuntime` at
execution time, without changing behaviour:

* loads of tracked locals/members are wrapped:
  ``x``  ->  ``__dft_probe__.u(self, 'x', <line>, x)``;
* port accesses are routed through the probe:
  ``self.ip.read(i)``     -> ``__dft_probe__.pr(self, self.ip, <line>, i)``
  ``self.op.write(v, i)`` -> ``__dft_probe__.pw(self, self.op, <line>, v, i)``;
* a ``__dft_probe__.d(self, 'x', <line>)`` statement is appended after
  every assignment (and as the first body statement for loop targets).

All ``<line>`` arguments are *absolute* file lines, so dynamic events
join directly against the static anchors.  The rewritten function is
compiled in a copy of the original function's globals (plus the probe)
and installed on the module instance via ``register_processing`` —
the class and all other instances stay untouched.

Two emission variants exist, selected by the probe's recording mode:

* **per-event** (default): every def/use calls ``__dft_probe__.u``/
  ``.d`` as sketched above;
* **batched** (block engine): every def/use site ``N`` becomes a bare
  ``__dft_a__(__dft_tN__)`` — one C-level ``list.append`` of a tuple
  *preallocated at instrumentation time* (``(tag, var, model, line)``
  is fully static per site).  No Python frame and no tuple
  construction on the hot path; the event content and order are
  identical to the per-event variant by construction.

Compilation is memoized per ``(function, ports, variant)`` in
:data:`_CODE_CACHE` — repeated instrumentation (one fresh cluster per
testcase) only pays the ``exec`` of the cached code object.
"""

from __future__ import annotations

import ast
import types
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..analysis.astutils import (
    KERNEL_ATTRS,
    SourceInfo,
    assigned_local_names,
    get_source_info,
    port_read_target,
    port_write_target,
    self_attribute,
)
from ..tdf.module import TdfModule
from .probes import TAG_DEF, TAG_USE

PROBE_NAME = "__dft_probe__"
#: Batched mode: the probe buffer's ``append`` bound method.
APPEND_NAME = "__dft_a__"
#: Batched mode: per-site preallocated event tuples ``__dft_t<N>__``.
SITE_PREFIX = "__dft_t"

#: ``(underlying function, in ports, out ports, batched)`` ->
#: ``(code object, function name, site templates)``.  Site templates
#: are ``(tag, var, line)`` triples in emission order; the model name
#: is added per instance at exec time.
_CODE_CACHE: Dict[tuple, Tuple[Any, str, tuple]] = {}


def _load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def _probe_call(method: str, args: list) -> ast.Call:
    return ast.Call(
        func=ast.Attribute(value=_load(PROBE_NAME), attr=method, ctx=ast.Load()),
        args=args,
        keywords=[],
    )


class _Rewriter(ast.NodeTransformer):
    """Expression/statement transformer for one processing body."""

    def __init__(
        self,
        in_ports: Set[str],
        out_ports: Set[str],
        local_names: Set[str],
        line_offset: int,
        batched: bool = False,
    ) -> None:
        self.in_ports = in_ports
        self.out_ports = out_ports
        self.local_names = local_names
        self.line_offset = line_offset
        self.batched = batched
        #: Batched mode: ``(tag, var, line)`` per emitted u/d site, in
        #: emission order (site N reads global ``__dft_t<N>__``).
        self.sites: List[tuple] = []

    def _abs(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 1) + self.line_offset

    def _line_const(self, node: ast.AST) -> ast.Constant:
        return ast.Constant(value=self._abs(node))

    def _site_append(self, tag: int, var: str, line: int) -> ast.Call:
        """``__dft_a__(__dft_tN__)`` for a new batched event site."""
        idx = len(self.sites)
        self.sites.append((tag, var, line))
        return ast.Call(
            func=_load(APPEND_NAME),
            args=[_load(f"{SITE_PREFIX}{idx}__")],
            keywords=[],
        )

    def _u_event(self, var: str, line: int, value_node: ast.expr) -> ast.expr:
        """A use event wrapping ``value_node`` (returns its value)."""
        if self.batched:
            # (value, append(site))[0]: value first, then the event —
            # the same order as evaluating u()'s arguments then its body.
            return ast.Subscript(
                value=ast.Tuple(
                    elts=[value_node, self._site_append(TAG_USE, var, line)],
                    ctx=ast.Load(),
                ),
                slice=ast.Constant(value=0),
                ctx=ast.Load(),
            )
        return _probe_call(
            "u",
            [_load("self"), ast.Constant(var), ast.Constant(line), value_node],
        )

    def _d_stmt(self, var: str, line: int) -> ast.Expr:
        """A definition event statement."""
        if self.batched:
            return ast.Expr(value=self._site_append(TAG_DEF, var, line))
        return ast.Expr(
            value=_probe_call(
                "d", [_load("self"), ast.Constant(var), ast.Constant(line)]
            )
        )

    # -- expression wrapping ---------------------------------------------------

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.local_names
            and node.id != "self"
        ):
            return ast.copy_location(
                self._u_event(node.id, self._abs(node), node), node
            )
        return node

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        attr = self_attribute(node)
        if attr is not None:
            if (
                isinstance(node.ctx, ast.Load)
                and attr not in self.in_ports
                and attr not in self.out_ports
                and attr not in KERNEL_ATTRS
            ):
                return ast.copy_location(
                    self._u_event(attr, self._abs(node), node), node
                )
            return node
        node.value = self.visit(node.value)
        return node

    def visit_Call(self, node: ast.Call) -> ast.AST:
        write_target = port_write_target(node)
        if write_target is not None and write_target in self.out_ports:
            args = [self.visit(a) for a in node.args]
            port_expr = node.func.value  # type: ignore[attr-defined]
            return ast.copy_location(
                _probe_call(
                    "pw",
                    [_load("self"), port_expr, self._line_const(node)] + args,
                ),
                node,
            )
        read_target = port_read_target(node)
        if read_target is not None and read_target in self.in_ports:
            args = [self.visit(a) for a in node.args]
            if isinstance(node.func, ast.Attribute) and node.func.attr == "read":
                port_expr = node.func.value
            else:
                port_expr = node.func
            return ast.copy_location(
                _probe_call(
                    "pr",
                    [_load("self"), port_expr, self._line_const(node)] + args,
                ),
                node,
            )
        # Ordinary call: transform callee and arguments, but do not wrap
        # a ``self.helper`` method lookup as a member use.
        if isinstance(node.func, ast.Attribute) and self_attribute(node.func) is not None:
            pass
        else:
            node.func = self.visit(node.func)
        node.args = [self.visit(a) for a in node.args]
        node.keywords = [
            ast.keyword(arg=kw.arg, value=self.visit(kw.value)) for kw in node.keywords
        ]
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return node  # nested functions stay opaque

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    # -- statement rewriting (def probes) -----------------------------------------

    def _def_probes(self, target: ast.AST, line: int) -> list:
        """Probe statements for every tracked name defined by ``target``."""
        probes = []
        for node in ast.walk(target):
            var: Optional[str] = None
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                if node.id in self.local_names:
                    var = node.id
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
                attr = self_attribute(node)
                if attr is not None and attr not in KERNEL_ATTRS:
                    var = attr
            if var is not None:
                probes.append(self._d_stmt(var, line))
        return probes

    def visit_Assign(self, node: ast.Assign) -> Any:
        node.value = self.visit(node.value)
        # Subscript/attribute chains inside targets may contain loads.
        new_targets = []
        for target in node.targets:
            if isinstance(target, (ast.Subscript,)):
                target.value = self.visit(target.value)
                target.slice = self.visit(target.slice)
            new_targets.append(target)
        node.targets = new_targets
        probes = []
        for target in node.targets:
            probes.extend(self._def_probes(target, self._abs(node)))
        return [node] + probes

    def visit_AnnAssign(self, node: ast.AnnAssign) -> Any:
        if node.value is None:
            return node
        node.value = self.visit(node.value)
        return [node] + self._def_probes(node.target, self._abs(node))

    def visit_AugAssign(self, node: ast.AugAssign) -> Any:
        line = self._abs(node)
        node.value = self.visit(node.value)
        pre = []
        # ``x += e`` uses x before redefining it.
        if isinstance(node.target, ast.Name) and node.target.id in self.local_names:
            pre.append(
                ast.Expr(
                    value=self._u_event(
                        node.target.id,
                        line,
                        ast.Name(id=node.target.id, ctx=ast.Load()),
                    )
                )
            )
        else:
            attr = self_attribute(node.target)
            if attr is not None and attr not in KERNEL_ATTRS:
                pre.append(
                    ast.Expr(
                        value=self._u_event(
                            attr,
                            line,
                            ast.Attribute(
                                value=_load("self"), attr=attr, ctx=ast.Load()
                            ),
                        )
                    )
                )
        return pre + [node] + self._def_probes(node.target, line)

    def visit_For(self, node: ast.For) -> Any:
        node.iter = self.visit(node.iter)
        probes = self._def_probes(node.target, self._abs(node))
        node.body = probes + [self.visit(s) for s in node.body]
        node.body = _flatten(node.body)
        node.orelse = _flatten([self.visit(s) for s in node.orelse])
        return node

    def visit_With(self, node: ast.With) -> Any:
        probes = []
        for item in node.items:
            item.context_expr = self.visit(item.context_expr)
            if item.optional_vars is not None:
                probes.extend(self._def_probes(item.optional_vars, self._abs(node)))
        node.body = _flatten(probes + [self.visit(s) for s in node.body])
        return node

    def generic_visit(self, node: ast.AST) -> ast.AST:
        node = super().generic_visit(node)
        # Statement bodies may now contain [stmt, probe, ...] lists from
        # the def-probe insertion; flatten them.  Expression nodes like
        # IfExp also have a ``body`` attribute, but not as a list.
        for attr in ("body", "orelse", "finalbody"):
            value = getattr(node, attr, None)
            if isinstance(value, list):
                setattr(node, attr, _flatten(value))
        return node


def _flatten(stmts: list) -> list:
    flat = []
    for s in stmts:
        if isinstance(s, list):
            flat.extend(s)
        else:
            flat.append(s)
    return flat


def compile_processing_ast(func: ast.FunctionDef, info: SourceInfo) -> Any:
    """Compile a (possibly rewritten) processing ``FunctionDef``.

    Finalises the tree the way every processing rewrite needs it:
    decorators dropped, locations fixed, line numbers shifted back to
    the original file so tracebacks (and the def/use anchors) point at
    real source lines.  Shared by the instrumenter and the mutation
    operators (:mod:`repro.mutation`), which splice a mutated body into
    the very same pipeline.
    """
    func.decorator_list = []
    tree = ast.Module(body=[func], type_ignores=[])
    ast.fix_missing_locations(tree)
    ast.increment_lineno(tree, info.line_offset)
    return compile(tree, info.filename, "exec")


def install_processing_ast(
    module: TdfModule,
    code: Any,
    func_name: str,
    extra_globals: Optional[Dict[str, Any]] = None,
) -> Optional[Callable[[], None]]:
    """Exec a compiled processing body and register it on ``module``.

    The code object runs in a *copy* of the original function's globals
    (optionally extended with ``extra_globals``, e.g. the probe
    bindings), so the class and all other instances stay untouched.
    Returns the previous processing registration for later restore.
    """
    previous = module._processing_fn
    fn = module.resolved_processing()
    underlying = fn.__func__ if isinstance(fn, types.MethodType) else fn
    namespace = dict(getattr(underlying, "__globals__", {}))
    if extra_globals:
        namespace.update(extra_globals)
    exec(code, namespace)
    new_fn = namespace[func_name]
    module.register_processing(types.MethodType(new_fn, module))
    return previous


def instrument_processing(module: TdfModule, probe: Any) -> Callable[[], None]:
    """Instrument ``module``'s processing callable and install it.

    Returns the previous processing callable registration so the caller
    can restore it (``None`` when the plain method was in use).

    The expensive part — source recovery, AST rewrite, ``compile()`` —
    is memoized on the *underlying function* (shared by every instance
    of a class and every testcase), keyed with the port-name sets and
    the probe's recording mode that shape the rewrite.  Per call only a
    fresh ``exec`` binds the probe (and, in batched mode, the per-site
    event tuples carrying this instance's model name).
    """
    original_registration = module._processing_fn
    fn = module.resolved_processing()
    underlying = fn.__func__ if isinstance(fn, types.MethodType) else fn
    batched = getattr(probe, "batched", False)
    in_ports = frozenset(p.name for p in module.in_ports())
    out_ports = frozenset(p.name for p in module.out_ports())
    cache_key = (underlying, in_ports, out_ports, batched)
    cached = _CODE_CACHE.get(cache_key)
    if cached is None:
        info = get_source_info(fn)
        local_names = assigned_local_names(info.func)
        rewriter = _Rewriter(
            set(in_ports), set(out_ports), local_names, info.line_offset, batched
        )
        func = info.func
        # Rewrite the body directly: visit_FunctionDef keeps *nested*
        # functions opaque, so the top-level def must not go through it.
        func.body = _flatten([rewriter.visit(stmt) for stmt in func.body])
        code = compile_processing_ast(func, info)
        cached = (code, func.name, tuple(rewriter.sites))
        _CODE_CACHE[cache_key] = cached

    code, func_name, sites = cached
    extra: Dict[str, Any] = {PROBE_NAME: probe}
    if batched:
        extra[APPEND_NAME] = probe._buf.append
        model = module.name
        for idx, (tag, var, line) in enumerate(sites):
            extra[f"{SITE_PREFIX}{idx}__"] = (tag, var, model, line)
    install_processing_ast(module, code, func_name, extra)
    return original_registration


def restore_processing(module: TdfModule, previous: Optional[Callable[[], None]]) -> None:
    """Undo :func:`instrument_processing`."""
    module._processing_fn = previous
