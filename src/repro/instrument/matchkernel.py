"""Vectorized columnar coverage-matching kernel (paper §V, array form).

:func:`match_columns` is the hot-path twin of the scan matchers in
:mod:`repro.instrument.matching`: it consumes the columnar probe
store's per-field arrays directly — tag stream plus seven unified
``int64`` payload columns over a string dictionary — and never
materialises per-event tuples, dataclass views, or Python dicts keyed
per event.  The three scan joins become three array passes:

* **var last-def join** — factorize ``(model, var)`` into one dense
  integer key, stable-sort the var events by key (stream order is
  preserved within a key), and compute the running last-def position
  with a grouped cummax: ``maximum.accumulate`` over def positions,
  validated against each group's start offset.  A use pairs with the
  def the cummax points at — exactly the running ``last_def`` dict of
  the scan matcher, for every group at once.

* **port-read floor join** — deduplicate writes to last-by-sequence
  per ``(signal, token)`` (stable sort + last-of-run selection), then
  resolve every read's sample-and-hold floor ("greatest written token
  ``<= token`` on the same signal") with a single
  ``np.searchsorted(side='right') - 1`` over the combined
  ``signal * radix + token`` key space.  Testbench writes pair the
  read with the reader's placeholder definition at its model start
  line; negative (initial/delay) tokens pair with nothing.

* **use-without-def diagnostics** — undriven reads reduce to first
  occurrence per ``reader_model.port`` description, in stream order,
  with the same :class:`UseWithoutDefWarning` text as the scan path.

The emitted :class:`~repro.instrument.matching.MatchResult` contents
(pair set, diagnostic order, warning count) are byte-identical to the
scan matchers by construction and verified by a Hypothesis equivalence
property.  The kernel requires numpy; callers go through
:func:`columns_of`, which returns ``None`` when numpy is unavailable so
:func:`~repro.instrument.matching.match_events` can fall back to the
scan path (numpy stays an optional dependency).

Memory note: the vector path materialises the full column set (~9
bytes/row plus masks), trading the store's O(1) streaming footprint
for array passes.  At a million events that is tens of megabytes —
fine on analysis hosts; the scan matcher remains the O(1)-memory
option and the ``matcher`` knob picks between them.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.store.columns import (
    HAVE_NUMPY,
    TAG_DEF,
    TAG_PR,
    TAG_PW,
    _np as np,
    encode_chunk,
)
from .probes import UseWithoutDefWarning, WriterKind

#: ``(tags, payload_columns, strings, members)`` — the array quadruple
#: the kernel consumes.  ``members`` is the per-row lockstep member
#: column (or ``None``); the kernel ignores it, lanes mask on it.
ColumnSet = Tuple[Any, Tuple, Sequence[str], Optional[Any]]


def columns_of(buf: Any) -> Optional[ColumnSet]:
    """The per-field arrays of any batched probe buffer, or ``None``.

    Columnar stores and store-backed member lanes expose
    ``to_columns()`` (spilled chunks concatenate without ever decoding
    tuples); a plain in-memory tuple buffer is packed through the same
    chunk encoder once.  Returns ``None`` when numpy is unavailable —
    the caller's signal to take the scan path.
    """
    if not HAVE_NUMPY or buf is None:
        return None
    to_columns = getattr(buf, "to_columns", None)
    if to_columns is not None:
        return to_columns()
    strings: List[str] = []
    events = buf if isinstance(buf, list) else list(buf)
    payload = encode_chunk(events, {}, strings)
    tags = np.frombuffer(payload[2], dtype=np.uint8)
    return tags, payload[3], strings, None


def match_columns(
    columns: ColumnSet,
    model_start_lines: Dict[str, int],
    result: Any,
    warn: bool,
) -> int:
    """Join a columnar event stream into ``result``; returns row count.

    ``result`` is a :class:`~repro.instrument.matching.MatchResult`;
    its ``pairs`` set and ``use_without_def`` list receive exactly what
    the scan matchers would produce for the same stream.
    """
    tags, cols, strings, _members = columns
    tags = np.asarray(tags, dtype=np.uint8)
    n = int(tags.shape[0])
    if n == 0:
        return 0
    a, b, c, d, e, f, g = (np.asarray(col, dtype=np.int64) for col in cols)
    # String ids are < len(strings); one radix for all combined keys.
    radix_s = len(strings) + 1
    pair_blocks: List[Any] = []

    var_mask = tags <= TAG_DEF
    if var_mask.any():
        pair_blocks += _join_var_events(
            a[var_mask], b[var_mask], c[var_mask], tags[var_mask] == TAG_DEF,
            radix_s,
        )

    pr_mask = tags == TAG_PR
    if pr_mask.any():
        _collect_use_without_def(
            a[pr_mask], c[pr_mask], d[pr_mask], g[pr_mask],
            radix_s, strings, result, warn,
        )
        pw_mask = tags == TAG_PW
        if pw_mask.any():
            pair_blocks += _join_port_events(
                (a[pw_mask], b[pw_mask], c[pw_mask], d[pw_mask],
                 e[pw_mask], f[pw_mask]),
                (a[pr_mask], b[pr_mask], c[pr_mask], d[pr_mask],
                 e[pr_mask], f[pr_mask], g[pr_mask]),
                radix_s, strings, model_start_lines,
            )

    if pair_blocks:
        rows = (
            pair_blocks[0] if len(pair_blocks) == 1
            else np.concatenate(pair_blocks, axis=0)
        )
        add_pair = result.pairs.add
        # Dedup in id space (interning is bijective, so id-distinct ==
        # string-distinct) before decoding the survivors to tuples.
        for var, dm, dl, um, ul in _unique_rows(rows).tolist():
            add_pair((strings[var], strings[dm], dl, strings[um], ul))
    return n


def _unique_rows(rows):
    """Distinct rows of an int64 ``(n, k)`` matrix (order arbitrary).

    ``np.unique(rows, axis=0)`` sorts a structured void view — an
    order of magnitude slower than sorting scalars.  The row values
    here are tiny (string ids and source lines), so a mixed-radix
    packing into one int64 key per row is exact whenever the product
    of per-column ranges fits 63 bits — always, in practice; the void
    path stays as the overflow fallback.
    """
    lows = rows.min(axis=0)
    shifted = rows - lows
    radices = [int(r) + 1 for r in shifted.max(axis=0).tolist()]
    span = 1
    for radix in radices:
        span *= radix
    if span >= 2 ** 63:  # pragma: no cover - degenerate line numbers
        return np.unique(rows, axis=0)
    key = shifted[:, 0]
    for j in range(1, shifted.shape[1]):
        key = key * radices[j] + shifted[:, j]
    _, first = np.unique(key, return_index=True)
    return rows[first]


def _join_var_events(v_var, v_model, v_line, v_isdef, radix_s) -> List[Any]:
    """Grouped last-def join over the var-event subset.

    One stable sort brings each ``(model, var)`` group together in
    stream order; a cummax over def positions then replays the scan
    matcher's running ``last_def`` dict for every group simultaneously.
    """
    key = v_model * radix_s + v_var
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    isdef_s = v_isdef[order]
    m = key_s.shape[0]
    pos = np.arange(m, dtype=np.int64)
    last_def = np.maximum.accumulate(np.where(isdef_s, pos, -1))
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(key_s[1:], key_s[:-1], out=boundary[1:])
    group_start = np.maximum.accumulate(np.where(boundary, pos, 0))
    # A use pairs iff its group holds a def at or before it in stream
    # order — i.e. the global cummax has not leaked from a prior group.
    use_ok = ~isdef_s
    np.logical_and(use_ok, last_def >= group_start, out=use_ok)
    if not use_ok.any():
        return []
    var_s = v_var[order]
    model_s = v_model[order]
    line_s = v_line[order]
    def_line = line_s[last_def[use_ok]]
    model_ok = model_s[use_ok]
    return [np.stack(
        [var_s[use_ok], model_ok, def_line, model_ok, line_s[use_ok]],
        axis=1,
    )]


def _join_port_events(writes, reads, radix_s, strings, model_start_lines):
    """Floor-join port reads against last-by-sequence writes."""
    w_sig, w_tok, w_var, w_model, w_line, w_kind = writes
    r_sig, r_tok, r_port, r_model, r_amod, r_aline, r_undriven = reads
    # Initial/delay tokens (negative index) and undriven reads pair
    # with nothing; drop them before the join.
    valid = (r_undriven == 0) & (r_tok >= 0)
    if not valid.any():
        return []
    r_sig = r_sig[valid]
    r_tok = r_tok[valid]
    r_port = r_port[valid]
    r_model = r_model[valid]
    r_amod = r_amod[valid]
    r_aline = r_aline[valid]

    # Combined (signal, token) key space shared by writes and reads.
    t_min = min(int(w_tok.min()), 0)
    radix_t = max(int(w_tok.max()), int(r_tok.max())) - t_min + 1
    w_key = w_sig * radix_t + (w_tok - t_min)
    order = np.argsort(w_key, kind="stable")
    w_key_s = w_key[order]
    m = w_key_s.shape[0]
    # Last-of-run in stable order == last write by sequence per token —
    # the scan matcher's ``sig_map[token] = ev`` overwrite semantics.
    last_of_run = np.empty(m, dtype=bool)
    last_of_run[-1] = True
    np.not_equal(w_key_s[1:], w_key_s[:-1], out=last_of_run[:-1])
    w_rows = order[last_of_run]
    u_key = w_key_s[last_of_run]
    u_sig = w_sig[w_rows]

    # Sample-and-hold floor: greatest written token <= read token,
    # valid only when the floor landed on the same signal.
    r_key = r_sig * radix_t + (r_tok - t_min)
    floor = np.searchsorted(u_key, r_key, side="right") - 1
    ok = floor >= 0
    floor_safe = np.where(ok, floor, 0)
    np.logical_and(ok, u_sig[floor_safe] == r_sig, out=ok)
    if not ok.any():
        return []
    wi = w_rows[floor_safe[ok]]
    kind = w_kind[wi]

    try:
        tb_id = strings.index(WriterKind.TESTBENCH.value)
    except ValueError:
        tb_id = -1
    testbench = kind == tb_id
    blocks: List[Any] = []
    model_hit = ~testbench
    if model_hit.any():
        wm = wi[model_hit]
        blocks.append(np.stack(
            [w_var[wm], w_model[wm], w_line[wm],
             r_amod[ok][model_hit], r_aline[ok][model_hit]],
            axis=1,
        ))
    if testbench.any():
        # Testbench writes pair with the reader's placeholder def at
        # its model start line; readers without a start line pair with
        # nothing (uninstrumented readers).
        start_by_id = np.full(len(strings), -1, dtype=np.int64)
        for name, line in model_start_lines.items():
            sid = _string_id(strings, name)
            if sid is not None:
                start_by_id[sid] = line
        t_model = r_model[ok][testbench]
        t_start = start_by_id[t_model]
        has_start = t_start >= 0
        if has_start.any():
            blocks.append(np.stack(
                [r_port[ok][testbench][has_start], t_model[has_start],
                 t_start[has_start], r_amod[ok][testbench][has_start],
                 r_aline[ok][testbench][has_start]],
                axis=1,
            ))
    return blocks


def _collect_use_without_def(
    r_sig, r_port, r_model, r_undriven, radix_s, strings, result, warn
) -> None:
    """First-occurrence undriven-read diagnostics, in stream order."""
    und = r_undriven != 0
    if not und.any():
        return
    u_model = r_model[und]
    u_port = r_port[und]
    u_sig = r_sig[und]
    desc_key = u_model * radix_s + u_port
    _, first = np.unique(desc_key, return_index=True)
    for i in np.sort(first).tolist():
        desc = f"{strings[u_model[i]]}.{strings[u_port[i]]}"
        result.use_without_def.append(desc)
        if warn:
            warnings.warn(
                f"use of port {desc} without any definition "
                f"(signal {strings[u_sig[i]]!r} has no driver): undefined "
                f"behaviour per the SystemC-AMS standard",
                UseWithoutDefWarning,
                stacklevel=2,
            )


def _string_id(strings: Sequence[str], name: str) -> Optional[int]:
    """Id of ``name`` in the chunk string table (linear: tables are
    tiny — one entry per distinct model/var/signal name)."""
    try:
        return strings.index(name)  # type: ignore[union-attr]
    except ValueError:
        return None
