"""The dynamic-analysis runner (paper Fig. 3, right side).

For every testcase the runner builds a fresh cluster (testcases must
not contaminate each other's member state), instruments every analysed
model's ``processing()``, installs port hooks on the uninstrumented
modules (testbench sources, redefining library elements), applies the
testcase's stimuli, simulates, and joins the recorded events into the
set of exercised def-use pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis.cluster_analysis import StaticAnalysisResult
from ..analysis.netlist import origin_of
from ..obs import get_telemetry
from ..tdf.cluster import Cluster
from ..tdf.engine.executor import resolve_engine
from ..tdf.module import TdfModule
from ..tdf.ports import TdfOut
from ..tdf.simulator import Simulator
from ..testing.testcase import TestCase, TestSuite
from .instrumenter import instrument_processing
from .matching import MatchResult, match_events
from .probes import ProbeRuntime, WriterKind

#: A nullary callable producing a **fresh** cluster instance per call.
#:
#: The fresh-instance contract is load-bearing: the dynamic analysis
#: runs every testcase on its own cluster so module member state,
#: signal buffers and instrumentation hooks can never leak between
#: testcases, and the pipeline builds one more instance for the static
#: stage.  Returning a cached/shared cluster breaks testcase isolation
#: and double-instruments ``processing()``.  Telemetry records how many
#: builds one pipeline run pays (``pipeline.cluster_builds``).
ClusterFactory = Callable[[], Cluster]


@dataclass
class DynamicResult:
    """Per-testcase exercised pairs for one suite execution."""

    per_testcase: Dict[str, MatchResult] = field(default_factory=dict)

    def exercised_keys(self) -> set:
        """Union of exercised pair keys over all testcases."""
        keys = set()
        for match in self.per_testcase.values():
            keys |= match.pairs
        return keys

    def use_without_def(self) -> List[str]:
        """All distinct use-without-def findings across testcases.

        First-occurrence order (testcase order, then event order within
        a testcase); deduplicated with a seen-set so large suites do not
        pay quadratic list membership scans.
        """
        found: List[str] = []
        seen: set = set()
        for match in self.per_testcase.values():
            for desc in match.use_without_def:
                if desc not in seen:
                    seen.add(desc)
                    found.append(desc)
        return found


class DynamicAnalyzer:
    """Executes a testsuite against an instrumented cluster."""

    def __init__(
        self,
        cluster_factory: ClusterFactory,
        static: StaticAnalysisResult,
        warn: bool = False,
        telemetry=None,
        engine: Optional[str] = "auto",
        probe_store=None,
        matcher: str = "auto",
    ) -> None:
        self.cluster_factory = cluster_factory
        self.static = static
        self.warn = warn
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        #: Event-matching implementation knob (``DftConfig.matcher``):
        #: ``auto``/``scan``/``vector`` — all result-identical.
        self.matcher = matcher
        #: Resolved TDF engine for the simulations ("interp" or "block").
        #: Block runs also switch the probe to batched recording — probe
        #: *semantics* (event content and order) are identical; only the
        #: storage format changes.
        self.engine = resolve_engine(engine)
        #: Optional :class:`~repro.obs.store.ProbeStoreSpec` selecting
        #: the recording backend; each testcase gets a fresh store so
        #: spill files never outlive their match.
        self.probe_store = probe_store

    # -- single testcase ------------------------------------------------------

    def run_testcase(self, testcase: TestCase) -> MatchResult:
        """Run one testcase and return its exercised pairs.

        Each testcase gets a ``dynamic.testcase[<name>]`` telemetry span
        with ``dynamic.simulate`` / ``dynamic.match`` children; probe
        event counts and the number of exercised pairs are attached as
        span attributes and ``instrument.*`` counters.
        """
        tel = self.telemetry
        with tel.span(
            f"dynamic.testcase[{testcase.name}]", testcase=testcase.name
        ) as tc_span:
            cluster = self.cluster_factory()
            store = (
                self.probe_store.make(tel) if self.probe_store is not None else None
            )
            try:
                probe = ProbeRuntime(
                    cluster.name,
                    batched=self.engine == "block",
                    store=store,
                )
                self._instrument(cluster, probe)
                self._install_hooks(cluster, probe)
                testcase.apply(cluster)
                simulator = Simulator(cluster, engine=self.engine)
                with tel.span("dynamic.simulate", testcase=testcase.name):
                    simulator.run(testcase.duration)
                    simulator.finish()
                initial_tokens = {
                    sig.name: (sig.driver.delay if sig.driver is not None else 0)
                    for sig in cluster.signals
                }
                with tel.span("dynamic.match", testcase=testcase.name):
                    match = match_events(
                        probe,
                        testcase.name,
                        self.static.model_start_lines,
                        initial_tokens,
                        warn=self.warn,
                        matcher=self.matcher,
                        telemetry=tel,
                    )
                if tel.enabled:
                    nv, nw, nr = probe.event_counts()
                    events = {
                        "var_events": nv,
                        "port_writes": nw,
                        "port_reads": nr,
                    }
                    for kind, count in events.items():
                        tc_span.set_attribute(kind, count)
                        tel.metrics.counter(
                            f"instrument.{kind}", cluster=cluster.name
                        ).inc(count)
                    tc_span.set_attribute("exercised_pairs", len(match.pairs))
                    tel.metrics.counter(
                        "instrument.testcases", cluster=cluster.name
                    ).inc()
                return match
            finally:
                if store is not None:
                    store.close()

    def run_suite(self, suite: TestSuite) -> DynamicResult:
        """Run every testcase of ``suite`` in order."""
        result = DynamicResult()
        for testcase in suite:
            result.per_testcase[testcase.name] = self.run_testcase(testcase)
        return result

    def run_suite_batched(self, suite: TestSuite, batch_size: int) -> DynamicResult:
        """Run ``suite`` in lockstep batches of up to ``batch_size``.

        Each testcase still gets its own fresh cluster, instrumentation
        and probe runtime; only the *execution* interleaves — the block
        engine's :class:`~repro.tdf.engine.batch.BatchExecutor` fires
        all members window by window, sharing one compiled program and
        time memo per topology group.  Every member records through its
        own lane of a shared :class:`~repro.instrument.probes.BatchProbeBuffer`,
        which tags events with the member index and demuxes them back
        into per-testcase streams for the matcher, so the returned
        result is byte-identical to :meth:`run_suite`.  A testcase that
        raises does so here too, in suite order, after its batch ran
        (later members of the batch did some extra lockstep work the
        serial path would have skipped — unobservable, since the
        exception discards the result either way).
        """
        from ..tdf.engine.batch import BatchMember, run_batch
        from .probes import BatchProbeBuffer

        if self.engine != "block":
            raise ValueError(
                "batch_size requires the block engine (--engine block/auto)"
            )
        width = max(int(batch_size), 1)
        tel = self.telemetry
        result = DynamicResult()
        testcases = list(suite)
        time_memo: Dict[int, object] = {}
        for start in range(0, len(testcases), width):
            chunk = testcases[start : start + width]
            store = (
                self.probe_store.make_batched(tel)
                if self.probe_store is not None
                else None
            )
            buffer = BatchProbeBuffer(store)
            members = []
            probes = []
            try:
                for lane, testcase in enumerate(chunk):
                    cluster = self.cluster_factory()
                    probe = ProbeRuntime(
                        cluster.name, batched=True, store=buffer.lane(lane)
                    )
                    self._instrument(cluster, probe)
                    self._install_hooks(cluster, probe)
                    testcase.apply(cluster)
                    simulator = Simulator(cluster, engine="block")
                    simulator.initialize()
                    members.append(
                        BatchMember(
                            testcase.name,
                            simulator,
                            simulator.now + testcase.duration,
                        )
                    )
                    probes.append(probe)
                with tel.span(
                    "dynamic.batch", testcases=len(chunk), width=width
                ):
                    # Errors are re-raised below in *suite order*, like
                    # the serial loop, not in lockstep-window order.
                    run_batch(
                        members,
                        raise_errors=False,
                        time_memo=time_memo,
                        label="dynamic.suite",
                    )
                for testcase, member, probe in zip(chunk, members, probes):
                    if member.error is not None:
                        raise member.error
                    member.sim.finish()
                    cluster = member.sim.cluster
                    initial_tokens = {
                        sig.name: (
                            sig.driver.delay if sig.driver is not None else 0
                        )
                        for sig in cluster.signals
                    }
                    with tel.span("dynamic.match", testcase=testcase.name):
                        match = match_events(
                            probe,
                            testcase.name,
                            self.static.model_start_lines,
                            initial_tokens,
                            warn=self.warn,
                            matcher=self.matcher,
                            telemetry=tel,
                        )
                    result.per_testcase[testcase.name] = match
                    if tel.enabled:
                        nv, nw, nr = probe.event_counts()
                        for kind, count in (
                            ("var_events", nv),
                            ("port_writes", nw),
                            ("port_reads", nr),
                        ):
                            tel.metrics.counter(
                                f"instrument.{kind}", cluster=cluster.name
                            ).inc(count)
                        tel.metrics.counter(
                            "instrument.testcases", cluster=cluster.name
                        ).inc()
            finally:
                buffer.close()
        return result

    # -- plumbing -----------------------------------------------------------------

    def _instrument(self, cluster: Cluster, probe: ProbeRuntime) -> None:
        for module in cluster.modules:
            if module.TESTBENCH or module.REDEFINING:
                continue
            instrument_processing(module, probe)

    def _install_hooks(self, cluster: Cluster, probe: ProbeRuntime) -> None:
        for module in cluster.modules:
            if module.TESTBENCH:
                for port in module.out_ports():
                    self._hook_write(probe, module, port, WriterKind.TESTBENCH, port.name, 0)
            elif module.REDEFINING:
                for port in module.out_ports():
                    var, kind, line = self._redef_annotation(cluster, module, port)
                    self._hook_write(probe, module, port, kind, var, line)

    def _redef_annotation(
        self, cluster: Cluster, module: TdfModule, port: TdfOut
    ) -> tuple:
        """Definition anchor for tokens leaving a redefining element.

        The variable is the originating (non-redefining) output port's
        name; the anchor is this element's output bind statement, and
        the defining "model" is the cluster (netlist) — matching the
        static PFirm/PWeak anchors.  Chains that originate at the
        testbench (or are undriven) degrade to testbench semantics: the
        reader pairs with its own placeholder definition.
        """
        ins = module.in_ports()
        origin = origin_of(ins[0]) if ins else None
        line = port.bind_site.lineno if port.bind_site is not None else 0
        if origin is None:
            return port.name, WriterKind.TESTBENCH, line
        driver, _redefined, _anchor = origin
        if driver.module is not None and driver.module.TESTBENCH:
            return driver.name, WriterKind.TESTBENCH, line
        return driver.name, WriterKind.REDEF, line

    def _hook_write(
        self,
        probe: ProbeRuntime,
        module: TdfModule,
        port: TdfOut,
        kind: WriterKind,
        var: str,
        line: int,
    ) -> None:
        if port.signal is None:
            return
        model = probe.cluster_name if kind is WriterKind.REDEF else module.name

        def hook(p: TdfOut, index: int, value, offset: int) -> None:
            probe.generic_write(p, index, var, model, line, kind)

        # Marker consumed by the engine compiler: a hook carrying it is a
        # pure probe-event recorder whose effect the compiled program can
        # replay without firing the interpreted write path.
        hook.__dft_probe_writer__ = (probe, var, model, line, kind)
        port.add_write_hook(hook)
