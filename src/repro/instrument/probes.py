"""Runtime probes: the instrumented-code logging API.

The paper's dynamic analysis inserts a print instruction before every
definition/use so that executing the testsuite produces logs of the
exercised data flow (§V).  Here the "print instructions" are calls into
a :class:`ProbeRuntime` whose short methods (``u``, ``d``, ``pr``,
``pw``) the instrumenter splices into the model's ``processing()`` AST:

* ``u`` / ``d`` — a local/member use/def was executed at a source line;
* ``pr`` / ``pw`` — a port read/write, which additionally records the
  global token index on the port's signal so cross-model flows can be
  joined exactly (see :mod:`repro.instrument.matching`).

The runtime also receives *generic* events from uninstrumented modules
(testbench sources, redefining library elements) via port hooks
installed by the runner.
"""

from __future__ import annotations

import enum
import io
import warnings
from dataclasses import dataclass, field
from typing import Any, List, Optional, TextIO

from ..tdf.ports import TdfIn, TdfOut


class UseWithoutDefWarning(UserWarning):
    """A port was used although its signal is never defined.

    Undefined behaviour per the SystemC-AMS standard; the paper found
    exactly this bug class in both case-study VPs ("the ports were not
    defined, but still used in a different TDF model", §VI-B).
    """


class WriterKind(enum.Enum):
    """Who produced a token (decides how a read is paired)."""

    MODEL = "model"          #: instrumented model write (def anchored in source)
    REDEF = "redef"          #: redefining library element (netlist anchor)
    TESTBENCH = "testbench"  #: testbench stimulus (pairs to placeholder defs)


@dataclass(slots=True)
class VarEvent:
    """A local/member def or use executed by instrumented code."""

    is_def: bool
    var: str
    model: str
    line: int
    seq: int


@dataclass(slots=True)
class PortWriteEvent:
    """A token written to a signal (a port-level definition)."""

    signal: str
    token_index: int
    var: str
    model: str
    line: int
    kind: WriterKind
    seq: int


@dataclass(slots=True)
class PortReadEvent:
    """A token consumed from a signal (a port-level use)."""

    signal: str
    token_index: int
    port: str              #: reader port name (for placeholder pairing)
    reader_model: str      #: reader module name
    anchor_model: str      #: use anchor: model name or cluster name
    anchor_line: int
    undriven: bool         #: True when the signal has no driver at all
    seq: int


class ProbeRuntime:
    """Collects all dynamic events of one testcase execution."""

    def __init__(self, cluster_name: str) -> None:
        self.cluster_name = cluster_name
        self.var_events: List[VarEvent] = []
        self.port_writes: List[PortWriteEvent] = []
        self.port_reads: List[PortReadEvent] = []
        self._seq = 0

    def _next(self) -> int:
        self._seq += 1
        return self._seq

    def clear(self) -> None:
        """Drop all recorded events (between testcases)."""
        self.var_events.clear()
        self.port_writes.clear()
        self.port_reads.clear()
        self._seq = 0

    # -- instrumented-code API (names kept short on purpose) -----------------

    def u(self, module: Any, var: str, line: int, value: Any) -> Any:
        """Record a local/member use; returns ``value`` unchanged."""
        self._seq += 1
        self.var_events.append(VarEvent(False, var, module.name, line, self._seq))
        return value

    def d(self, module: Any, var: str, line: int) -> None:
        """Record a local/member definition."""
        self._seq += 1
        self.var_events.append(VarEvent(True, var, module.name, line, self._seq))

    def pr(self, module: Any, port: TdfIn, line: int, offset: int = 0) -> Any:
        """Perform an instrumented port read and record the use."""
        index = port.global_index(offset)
        value = port.read(offset)
        assert port.signal is not None
        if module.OPAQUE_USES and port.bind_site is not None:
            anchor_model = self.cluster_name
            anchor_line = port.bind_site.lineno
        else:
            anchor_model = module.name
            anchor_line = line
        self.port_reads.append(
            PortReadEvent(
                signal=port.signal.name,
                token_index=index,
                port=port.name,
                reader_model=module.name,
                anchor_model=anchor_model,
                anchor_line=anchor_line,
                undriven=port.signal.driver is None,
                seq=self._next(),
            )
        )
        return value

    def pw(self, module: Any, port: TdfOut, line: int, value: Any, offset: int = 0) -> int:
        """Perform an instrumented port write and record the definition."""
        index = port.write(value, offset)
        assert port.signal is not None
        self.port_writes.append(
            PortWriteEvent(
                signal=port.signal.name,
                token_index=index,
                var=port.name,
                model=module.name,
                line=line,
                kind=WriterKind.MODEL,
                seq=self._next(),
            )
        )
        return index

    # -- generic (hook-based) events ---------------------------------------------

    def generic_write(
        self,
        port: TdfOut,
        token_index: int,
        var: str,
        model: str,
        line: int,
        kind: WriterKind,
    ) -> None:
        """Record a write from an uninstrumented module (via port hook)."""
        assert port.signal is not None
        self.port_writes.append(
            PortWriteEvent(
                signal=port.signal.name,
                token_index=token_index,
                var=var,
                model=model,
                line=line,
                kind=kind,
                seq=self._next(),
            )
        )

    # -- log dump (the paper's textual instrumentation log) -------------------------

    def write_log(self, stream: TextIO) -> None:
        """Dump all events as a text log (one line per event).

        This mirrors the paper's print-based instrumentation output; the
        in-memory events above are authoritative, the log is for humans
        and tests.
        """
        rows: List[tuple] = []
        for ev in self.var_events:
            rows.append((ev.seq, "DEF" if ev.is_def else "USE", ev.var, ev.model, ev.line, ""))
        for w in self.port_writes:
            rows.append((w.seq, "PW", w.var, w.model, w.line, f"{w.signal}[{w.token_index}] {w.kind.value}"))
        for r in self.port_reads:
            rows.append((r.seq, "PR", r.port, r.anchor_model, r.anchor_line, f"{r.signal}[{r.token_index}]"))
        for seq, tag, var, model, line, extra in sorted(rows):
            stream.write(f"{seq}\t{tag}\t{var}\t{model}:{line}\t{extra}\n")

    def log_text(self) -> str:
        """The event log as a string."""
        buf = io.StringIO()
        self.write_log(buf)
        return buf.getvalue()
