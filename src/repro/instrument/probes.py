"""Runtime probes: the instrumented-code logging API.

The paper's dynamic analysis inserts a print instruction before every
definition/use so that executing the testsuite produces logs of the
exercised data flow (§V).  Here the "print instructions" are calls into
a :class:`ProbeRuntime` whose short methods (``u``, ``d``, ``pr``,
``pw``) the instrumenter splices into the model's ``processing()`` AST:

* ``u`` / ``d`` — a local/member use/def was executed at a source line;
* ``pr`` / ``pw`` — a port read/write, which additionally records the
  global token index on the port's signal so cross-model flows can be
  joined exactly (see :mod:`repro.instrument.matching`).

The runtime also receives *generic* events from uninstrumented modules
(testbench sources, redefining library elements) via port hooks
installed by the runner.
"""

from __future__ import annotations

import enum
import io
import warnings
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, List, Optional, TextIO, Tuple

from ..tdf.errors import PortAccessError
from ..tdf.ports import TdfIn, TdfOut


class UseWithoutDefWarning(UserWarning):
    """A port was used although its signal is never defined.

    Undefined behaviour per the SystemC-AMS standard; the paper found
    exactly this bug class in both case-study VPs ("the ports were not
    defined, but still used in a different TDF model", §VI-B).
    """


class WriterKind(enum.Enum):
    """Who produced a token (decides how a read is paired)."""

    MODEL = "model"          #: instrumented model write (def anchored in source)
    REDEF = "redef"          #: redefining library element (netlist anchor)
    TESTBENCH = "testbench"  #: testbench stimulus (pairs to placeholder defs)


@dataclass(slots=True)
class VarEvent:
    """A local/member def or use executed by instrumented code."""

    is_def: bool
    var: str
    model: str
    line: int
    seq: int


@dataclass(slots=True)
class PortWriteEvent:
    """A token written to a signal (a port-level definition)."""

    signal: str
    token_index: int
    var: str
    model: str
    line: int
    kind: WriterKind
    seq: int


@dataclass(slots=True)
class PortReadEvent:
    """A token consumed from a signal (a port-level use)."""

    signal: str
    token_index: int
    port: str              #: reader port name (for placeholder pairing)
    reader_model: str      #: reader module name
    anchor_model: str      #: use anchor: model name or cluster name
    anchor_line: int
    undriven: bool         #: True when the signal has no driver at all
    seq: int


#: Tags of the batched-mode flat event buffer (first tuple element).
#: Kept small ints so tag dispatch in the matcher is two comparisons.
TAG_USE = 0
TAG_DEF = 1
TAG_PW = 2
TAG_PR = 3

_tag_of = itemgetter(0)


class BatchProbeBuffer:
    """Shared member-tagged event sink for lockstep batch runs.

    When the batch engine executes several testcases in lockstep, each
    member's :class:`ProbeRuntime` records through its own *lane* of
    the buffer.  With a :class:`~repro.obs.store.ColumnarProbeStore`
    built with ``member_column=True``, every lane appends into the one
    shared store (which tags rows with the member index and demuxes on
    ``iter_member``), so the whole batch spills to a single columnar
    stream.  Without a store, each lane simply *owns* a private event
    list: per-member recording order is all the matcher consumes, so
    in-memory lockstep recording needs no member tagging and no demux
    scan at all — and crucially the events a lane yields are the
    instrumenter's own long-lived per-site tuples, which the batched
    matcher memoizes by identity (see
    :func:`~repro.instrument.matching._match_batched`); transient
    demux copies would recycle ``id``\\ s mid-match and corrupt it.
    Either way a lane iterates as exactly the flat buffer a serial
    :class:`ProbeRuntime` would have recorded, so per-member match
    results are byte-identical to a serial run.
    """

    __slots__ = ("_store", "_lanes")

    def __init__(self, store: Optional[Any] = None) -> None:
        self._store = store
        self._lanes: List["_MemberLane"] = []

    def lane(self, member: int) -> "_MemberLane":
        """The append/iterate facade for one lockstep member."""
        lane = _MemberLane(self._store, member)
        self._lanes.append(lane)
        return lane

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return sum(len(lane) for lane in self._lanes)

    def close(self) -> None:
        if self._store is not None:
            self._store.close()


class _MemberLane:
    """One member's view of a :class:`BatchProbeBuffer`.

    Quacks like the flat list buffer ``ProbeRuntime`` records into:
    ``append`` records into the member's slice of the batch, iteration
    yields the member's events in recording order.  The ``streaming``
    flag mirrors the backing store's so the matcher picks its two-pass
    algorithm for spilled columnar streams.
    """

    __slots__ = ("_store", "_member", "_events", "streaming", "append")

    def __init__(self, store: Any, member: int) -> None:
        self._store = store
        self._member = member
        self.streaming = getattr(store, "streaming", False)
        # Resolve the append dispatch once: the probe closures capture
        # ``lane.append`` and call it per event.
        if store is not None:
            self._events: Optional[list] = None
            append_member = store.append_member
            self.append = lambda event: append_member(member, event)
        else:
            self._events = []
            self.append = self._events.append

    def __iter__(self):
        if self._events is not None:
            return iter(self._events)
        return self._store.iter_member(self._member)

    def __len__(self) -> int:
        if self._events is not None:
            return len(self._events)
        return sum(1 for _ in self)

    def to_columns(self):
        """This member's events as flat per-field arrays, or ``None``.

        The vectorized matcher's per-lane demux: the shared store
        yields its full column set once (cached across lanes) and each
        lane selects its rows with one boolean mask over the member
        column — instead of decoding and ownership-testing every event
        tuple.  In-memory lanes pack their private list through the
        chunk encoder.  ``None`` when numpy is unavailable.
        """
        from ..obs.store.columns import HAVE_NUMPY, _np, encode_chunk

        if not HAVE_NUMPY:
            return None
        if self._events is not None:
            strings: List[str] = []
            payload = encode_chunk(self._events, {}, strings)
            tags = _np.frombuffer(payload[2], dtype=_np.uint8)
            return tags, payload[3], strings, None
        full = self._store.to_columns()
        if full is None:  # pragma: no cover - store saw numpy vanish
            return None
        tags, cols, strings, members = full
        assert members is not None, "batched store lost its member column"
        mask = members == self._member
        return tags[mask], tuple(col[mask] for col in cols), strings, None

    def clear(self) -> None:
        """Drop this member's events (in-memory lanes only)."""
        if self._events is not None:
            self._events.clear()
        else:  # pragma: no cover - stores don't support per-member clears
            raise TypeError(
                "per-member clear is not supported on a streaming store"
            )


class ProbeRuntime:
    """Collects all dynamic events of one testcase execution.

    Two recording modes:

    * **per-event** (default): every probe call appends a dataclass
      event to ``var_events`` / ``port_writes`` / ``port_reads``, with a
      shared sequence counter.  This is the mode the interpreter engine
      uses and the reference for equivalence.
    * **batched** (``batched=True``, used by the compiled block engine):
      every probe call appends one plain tuple to a single flat buffer;
      the sequence number *is* the buffer position + 1, so the global
      event order is identical by construction.  The dataclass views are
      materialised lazily on first access (event matching consumes the
      raw buffer directly and never pays for materialisation).
    """

    def __init__(
        self,
        cluster_name: str,
        batched: bool = False,
        store: Optional[Any] = None,
    ) -> None:
        self.cluster_name = cluster_name
        self.batched = batched or store is not None
        self._seq = 0
        if self.batched:
            # ``store`` (e.g. repro.obs.store.ColumnarProbeStore) stands
            # in for the flat list buffer: the closures below only call
            # ``.append`` on it, the matcher only iterates it.
            self._buf: Optional[Any] = [] if store is None else store
            self._mat_len = -1
            self._mat: Tuple[list, list, list] = ([], [], [])
            self._install_batched()
        else:
            self._buf = None
            self.var_events: List[VarEvent] = []
            self.port_writes: List[PortWriteEvent] = []
            self.port_reads: List[PortReadEvent] = []

    def _next(self) -> int:
        self._seq += 1
        return self._seq

    def clear(self) -> None:
        """Drop all recorded events (between testcases)."""
        if self._buf is not None:
            self._buf.clear()  # in place: installed closures hold a reference
            self._mat_len = -1
        else:
            self.var_events.clear()
            self.port_writes.clear()
            self.port_reads.clear()
            self._seq = 0

    # -- batched mode ---------------------------------------------------------

    def __getattr__(self, name: str):
        # Only reached in batched mode (per-event instances assign the
        # lists in __init__): materialise the dataclass views on demand.
        if name in ("var_events", "port_writes", "port_reads"):
            mat = self._materialize()
            return mat[("var_events", "port_writes", "port_reads").index(name)]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _materialize(self) -> Tuple[list, list, list]:
        buf = self._buf
        assert buf is not None
        if self._mat_len == len(buf):
            return self._mat
        var_events: List[VarEvent] = []
        port_writes: List[PortWriteEvent] = []
        port_reads: List[PortReadEvent] = []
        for pos, ev in enumerate(buf):
            tag = ev[0]
            if tag <= TAG_DEF:
                var_events.append(VarEvent(tag == TAG_DEF, ev[1], ev[2], ev[3], pos + 1))
            elif tag == TAG_PW:
                port_writes.append(
                    PortWriteEvent(ev[1], ev[2], ev[3], ev[4], ev[5], ev[6], pos + 1)
                )
            else:
                port_reads.append(
                    PortReadEvent(
                        ev[1], ev[2], ev[3], ev[4], ev[5], ev[6], ev[7], pos + 1
                    )
                )
        self._mat = (var_events, port_writes, port_reads)
        self._mat_len = len(buf)
        return self._mat

    def event_counts(self) -> Tuple[int, int, int]:
        """(var, write, read) event counts without materialising."""
        if self._buf is None:
            return len(self.var_events), len(self.port_writes), len(self.port_reads)
        counts = getattr(self._buf, "event_counts", None)
        if counts is not None:  # columnar store tracks tags at flush time
            return counts()
        # One C-level pass (map + list.count) instead of a Python loop.
        tags = list(map(_tag_of, self._buf))
        nw = tags.count(TAG_PW)
        nr = tags.count(TAG_PR)
        return len(tags) - nw - nr, nw, nr

    def _install_batched(self) -> None:
        """Shadow the probe methods with flat-buffer closures.

        The instrumented code calls ``__dft_probe__.u(self, ...)`` — an
        instance-dict lookup resolving to these plain functions, which
        skips both the bound-method creation and the dataclass
        construction of the per-event path.  ``pr``/``pw`` inline the
        port fast paths but keep every user-visible validation and hook
        of :meth:`TdfIn.read` / :meth:`TdfOut.write`.
        """
        buf = self._buf
        assert buf is not None
        append = buf.append
        cluster_name = self.cluster_name
        # id(port) -> (anchor_model, anchor_line) for opaque uses, or
        # None when the anchor is the instrumented source line.
        anchor_cache: dict = {}

        def u(module, var, line, value):
            append((TAG_USE, var, module.name, line))
            return value

        def d(module, var, line):
            append((TAG_DEF, var, module.name, line))

        def pr(module, port, line, offset=0):
            sig = port.signal
            if sig is None:
                raise PortAccessError(f"read from unbound port {port.full_name()}")
            if not port._in_activation:
                raise PortAccessError(
                    f"port {port.full_name()} read outside of processing()"
                )
            if offset and not 0 <= offset < port.rate:
                raise PortAccessError(
                    f"sample offset {offset} out of range for port "
                    f"{port.full_name()} with rate {port.rate}"
                )
            index = sig._cursors[id(port)] + offset
            driver = sig.driver
            if driver is None:
                value = sig.initial_value
            else:
                # Inline _value_at's in-buffer fast path; delegate the
                # delay region and bounds diagnostics to the slow path.
                i = index - sig._base_index
                if i >= 0:
                    try:
                        value = sig._tokens[i]
                    except IndexError:
                        value = sig._value_at(index, port)
                else:
                    value = sig._value_at(index, port)
            hooks = port._read_hooks
            if hooks:
                for hook in hooks:
                    hook(port, index, value, offset)
            key = id(port)
            anchor = anchor_cache.get(key, 0)
            if anchor == 0:
                if module.OPAQUE_USES and port.bind_site is not None:
                    anchor = (cluster_name, port.bind_site.lineno)
                else:
                    anchor = None
                anchor_cache[key] = anchor
            if anchor is None:
                append(
                    (TAG_PR, sig.name, index, port.name, module.name,
                     module.name, line, driver is None)
                )
            else:
                append(
                    (TAG_PR, sig.name, index, port.name, module.name,
                     anchor[0], anchor[1], driver is None)
                )
            return value

        def pw(module, port, line, value, offset=0):
            sig = port.signal
            if sig is None:
                raise PortAccessError(f"write to unbound port {port.full_name()}")
            if not port._in_activation:
                raise PortAccessError(
                    f"port {port.full_name()} written outside of processing()"
                )
            if offset and not 0 <= offset < port.rate:
                raise PortAccessError(
                    f"sample offset {offset} out of range for port "
                    f"{port.full_name()} with rate {port.rate}"
                )
            index = port._flushed + offset
            port._pending.append((offset, value))
            hooks = port._write_hooks
            if hooks:
                for hook in hooks:
                    hook(port, index, value, offset)
            append((TAG_PW, sig.name, index, port.name, module.name, line,
                    WriterKind.MODEL))
            return index

        def generic_write(port, token_index, var, model, line, kind):
            append((TAG_PW, port.signal.name, token_index, var, model, line, kind))

        self.u = u
        self.d = d
        self.pr = pr
        self.pw = pw
        self.generic_write = generic_write

    # -- instrumented-code API (names kept short on purpose) -----------------

    def u(self, module: Any, var: str, line: int, value: Any) -> Any:
        """Record a local/member use; returns ``value`` unchanged."""
        self._seq += 1
        self.var_events.append(VarEvent(False, var, module.name, line, self._seq))
        return value

    def d(self, module: Any, var: str, line: int) -> None:
        """Record a local/member definition."""
        self._seq += 1
        self.var_events.append(VarEvent(True, var, module.name, line, self._seq))

    def pr(self, module: Any, port: TdfIn, line: int, offset: int = 0) -> Any:
        """Perform an instrumented port read and record the use."""
        index = port.global_index(offset)
        value = port.read(offset)
        assert port.signal is not None
        if module.OPAQUE_USES and port.bind_site is not None:
            anchor_model = self.cluster_name
            anchor_line = port.bind_site.lineno
        else:
            anchor_model = module.name
            anchor_line = line
        self.port_reads.append(
            PortReadEvent(
                signal=port.signal.name,
                token_index=index,
                port=port.name,
                reader_model=module.name,
                anchor_model=anchor_model,
                anchor_line=anchor_line,
                undriven=port.signal.driver is None,
                seq=self._next(),
            )
        )
        return value

    def pw(self, module: Any, port: TdfOut, line: int, value: Any, offset: int = 0) -> int:
        """Perform an instrumented port write and record the definition."""
        index = port.write(value, offset)
        assert port.signal is not None
        self.port_writes.append(
            PortWriteEvent(
                signal=port.signal.name,
                token_index=index,
                var=port.name,
                model=module.name,
                line=line,
                kind=WriterKind.MODEL,
                seq=self._next(),
            )
        )
        return index

    # -- generic (hook-based) events ---------------------------------------------

    def generic_write(
        self,
        port: TdfOut,
        token_index: int,
        var: str,
        model: str,
        line: int,
        kind: WriterKind,
    ) -> None:
        """Record a write from an uninstrumented module (via port hook)."""
        assert port.signal is not None
        self.port_writes.append(
            PortWriteEvent(
                signal=port.signal.name,
                token_index=token_index,
                var=var,
                model=model,
                line=line,
                kind=kind,
                seq=self._next(),
            )
        )

    # -- log dump (the paper's textual instrumentation log) -------------------------

    def write_log(self, stream: TextIO) -> None:
        """Dump all events as a text log (one line per event).

        This mirrors the paper's print-based instrumentation output; the
        in-memory events above are authoritative, the log is for humans
        and tests.
        """
        rows: List[tuple] = []
        for ev in self.var_events:
            rows.append((ev.seq, "DEF" if ev.is_def else "USE", ev.var, ev.model, ev.line, ""))
        for w in self.port_writes:
            rows.append((w.seq, "PW", w.var, w.model, w.line, f"{w.signal}[{w.token_index}] {w.kind.value}"))
        for r in self.port_reads:
            rows.append((r.seq, "PR", r.port, r.anchor_model, r.anchor_line, f"{r.signal}[{r.token_index}]"))
        for seq, tag, var, model, line, extra in sorted(rows):
            stream.write(f"{seq}\t{tag}\t{var}\t{model}:{line}\t{extra}\n")

    def log_text(self) -> str:
        """The event log as a string."""
        buf = io.StringIO()
        self.write_log(buf)
        return buf.getvalue()
