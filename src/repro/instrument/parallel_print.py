"""Parallel-print taps (paper §V).

To observe data flowing into redefining library components without
modifying them, the paper inserts a separate TDF module in parallel —
``parallel_print()`` — that receives the same signal and logs it.
:class:`ParallelPrint` is that module; :func:`tap_signal` attaches one
to an existing signal.

The dynamic runner achieves the same observation through kernel port
hooks (its events are checked against a ParallelPrint tap for
observational equivalence in the test suite), but the tap remains part
of the public API because it works on *any* kernel object graph, e.g.
when replaying recorded schedules.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..tdf.cluster import Cluster
from ..tdf.module import TdfModule
from ..tdf.ports import TdfIn
from ..tdf.signal import Signal


class ParallelPrint(TdfModule):
    """A non-intrusive observer bound in parallel to a signal.

    Records every ``(global_token_index, value)`` sample it sees.  As a
    testbench module it is invisible to the static analysis, so adding a
    tap never changes the coverage universe.
    """

    TESTBENCH = True
    OPAQUE_USES = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.m_samples: List[Tuple[int, Any]] = []

    def processing(self) -> None:
        index = self.ip.global_index(0)
        value = self.ip.read()
        self.m_samples.append((index, value))

    def values(self) -> List[Any]:
        """Observed values in token order."""
        return [value for _, value in self.m_samples]

    def clear(self) -> None:
        """Drop all recorded samples."""
        self.m_samples.clear()


def tap_signal(cluster: Cluster, signal: Signal, name: Optional[str] = None) -> ParallelPrint:
    """Attach a :class:`ParallelPrint` tap to ``signal``.

    Must be called before elaboration (the tap participates in the
    static schedule like any other module).
    """
    tap = ParallelPrint(name or f"tap_{signal.name}")
    cluster.add(tap)
    tap.ip.bind(signal)
    return tap
