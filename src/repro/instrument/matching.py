"""Joining dynamic events into exercised def-use pairs (paper §V).

"Each definition is mapped onto a corresponding use as soon as it is
encountered.  If there exists a use, but no definition, it is notified
as a warning."  Concretely:

* **local/member variables** — a use pairs with the most recent
  definition event of the same variable in the same model instance
  (member values persist, so the last def may be from an earlier
  activation — exactly the paper's ``m_mux_s`` cross-activation pairs);

* **ports** — a read of token ``i`` on a signal pairs with the write
  event of the greatest token index ``<= i`` on that signal (the
  floor accounts for the kernel's sample-and-hold repetition of
  unwritten samples).  The write event carries the definition anchor:
  a source line for instrumented models, the netlist bind line for
  redefining library elements, or the *testbench* marker, in which case
  the read pairs with the reader's own placeholder definition at its
  model start (Table I's ``(ip_signal_in, 1, TS, 3, TS)``);

* **initial/delay tokens** (negative index or below the priming count)
  pair with nothing — they are initial values, not definitions;

* a read on an **undriven signal** raises a
  :class:`~repro.instrument.probes.UseWithoutDefWarning` — the
  undefined-behaviour bug class both case studies of the paper exhibit.
"""

from __future__ import annotations

import bisect
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.associations import ExercisedPair
from .probes import (
    PortReadEvent,
    PortWriteEvent,
    ProbeRuntime,
    UseWithoutDefWarning,
    VarEvent,
    WriterKind,
)

PairKey = Tuple[str, str, int, str, int]


@dataclass
class MatchResult:
    """Exercised pairs and diagnostics of one testcase run."""

    testcase: str
    pairs: Set[PairKey] = field(default_factory=set)
    #: ``port.full()``-style descriptions of use-without-def reads.
    use_without_def: List[str] = field(default_factory=list)

    def exercised(self) -> List[ExercisedPair]:
        """The pairs as :class:`ExercisedPair` records."""
        return [
            ExercisedPair(var, dm, dl, um, ul, self.testcase)
            for (var, dm, dl, um, ul) in sorted(self.pairs)
        ]


def match_events(
    probe: ProbeRuntime,
    testcase: str,
    model_start_lines: Dict[str, int],
    initial_tokens: Dict[str, int],
    warn: bool = True,
) -> MatchResult:
    """Join the probe's event streams into exercised pairs.

    ``model_start_lines`` maps model name to the placeholder definition
    line (the ``def processing`` line); ``initial_tokens`` maps signal
    name to the number of priming (output-delay) tokens, which must not
    be treated as definitions.
    """
    result = MatchResult(testcase=testcase)
    _match_var_events(probe.var_events, result)
    _match_port_events(
        probe.port_writes,
        probe.port_reads,
        model_start_lines,
        initial_tokens,
        result,
        warn,
    )
    return result


def _match_var_events(events: List[VarEvent], result: MatchResult) -> None:
    last_def: Dict[Tuple[str, str], int] = {}
    # Events are appended in execution order; no re-sort needed.
    for ev in events:
        key = (ev.model, ev.var)
        if ev.is_def:
            last_def[key] = ev.line
        else:
            def_line = last_def.get(key)
            if def_line is None:
                # Value predates processing (initialize()/constructor):
                # not a def-use pair within the analysed scope.
                continue
            result.pairs.add((ev.var, ev.model, def_line, ev.model, ev.line))


def _match_port_events(
    writes: List[PortWriteEvent],
    reads: List[PortReadEvent],
    model_start_lines: Dict[str, int],
    initial_tokens: Dict[str, int],
    result: MatchResult,
    warn: bool,
) -> None:
    # Per signal: sorted token indices with their (last-by-seq) write event.
    per_signal: Dict[str, Dict[int, PortWriteEvent]] = {}
    for w in sorted(writes, key=lambda w: w.seq):
        per_signal.setdefault(w.signal, {})[w.token_index] = w
    sorted_indices: Dict[str, List[int]] = {
        sig: sorted(idx_map) for sig, idx_map in per_signal.items()
    }

    warned: Set[str] = set()
    for r in reads:
        if r.undriven:
            desc = f"{r.reader_model}.{r.port}"
            if desc not in warned:
                warned.add(desc)
                result.use_without_def.append(desc)
                if warn:
                    warnings.warn(
                        f"use of port {desc} without any definition "
                        f"(signal {r.signal!r} has no driver): undefined "
                        f"behaviour per the SystemC-AMS standard",
                        UseWithoutDefWarning,
                        stacklevel=2,
                    )
            continue
        if r.token_index < 0:
            continue  # reader-side delay: initial value, not a definition
        indices = sorted_indices.get(r.signal, [])
        pos = bisect.bisect_right(indices, r.token_index) - 1
        if pos < 0:
            # No write at or before this token: priming tokens are
            # initial values; anything else is a repetition of the
            # initial value and likewise carries no definition.
            continue
        w = per_signal[r.signal][indices[pos]]
        if w.kind is WriterKind.TESTBENCH:
            start = model_start_lines.get(r.reader_model)
            if start is None:
                continue
            result.pairs.add(
                (r.port, r.reader_model, start, r.anchor_model, r.anchor_line)
            )
        else:
            result.pairs.add((w.var, w.model, w.line, r.anchor_model, r.anchor_line))
