"""Joining dynamic events into exercised def-use pairs (paper §V).

"Each definition is mapped onto a corresponding use as soon as it is
encountered.  If there exists a use, but no definition, it is notified
as a warning."  Concretely:

* **local/member variables** — a use pairs with the most recent
  definition event of the same variable in the same model instance
  (member values persist, so the last def may be from an earlier
  activation — exactly the paper's ``m_mux_s`` cross-activation pairs);

* **ports** — a read of token ``i`` on a signal pairs with the write
  event of the greatest token index ``<= i`` on that signal (the
  floor accounts for the kernel's sample-and-hold repetition of
  unwritten samples).  The write event carries the definition anchor:
  a source line for instrumented models, the netlist bind line for
  redefining library elements, or the *testbench* marker, in which case
  the read pairs with the reader's own placeholder definition at its
  model start (Table I's ``(ip_signal_in, 1, TS, 3, TS)``);

* **initial/delay tokens** (negative index or below the priming count)
  pair with nothing — they are initial values, not definitions;

* a read on an **undriven signal** raises a
  :class:`~repro.instrument.probes.UseWithoutDefWarning` — the
  undefined-behaviour bug class both case studies of the paper exhibit.
"""

from __future__ import annotations

import bisect
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.associations import ExercisedPair
from .probes import (
    PortReadEvent,
    PortWriteEvent,
    ProbeRuntime,
    UseWithoutDefWarning,
    VarEvent,
    WriterKind,
)

PairKey = Tuple[str, str, int, str, int]

#: Valid values of the ``matcher`` knob (``DftConfig.matcher``).
MATCHERS = ("auto", "scan", "vector")


@dataclass
class MatchResult:
    """Exercised pairs and diagnostics of one testcase run."""

    testcase: str
    pairs: Set[PairKey] = field(default_factory=set)
    #: ``port.full()``-style descriptions of use-without-def reads.
    use_without_def: List[str] = field(default_factory=list)

    def exercised(self) -> List[ExercisedPair]:
        """The pairs as :class:`ExercisedPair` records."""
        return [
            ExercisedPair(var, dm, dl, um, ul, self.testcase)
            for (var, dm, dl, um, ul) in sorted(self.pairs)
        ]


def match_events(
    probe: ProbeRuntime,
    testcase: str,
    model_start_lines: Dict[str, int],
    initial_tokens: Dict[str, int],
    warn: bool = True,
    matcher: str = "auto",
    telemetry: Any = None,
) -> MatchResult:
    """Join the probe's event streams into exercised pairs.

    ``model_start_lines`` maps model name to the placeholder definition
    line (the ``def processing`` line); ``initial_tokens`` maps signal
    name to the number of priming (output-delay) tokens, which must not
    be treated as definitions.

    ``matcher`` picks the join implementation — every path produces
    identical results:

    * ``"scan"`` — the per-event Python matchers below (single-pass
      over batched buffers, two-pass over streaming stores, dataclass
      join for per-event probes);
    * ``"vector"`` — the columnar array kernel
      (:mod:`repro.instrument.matchkernel`); falls back to ``scan``
      when numpy is unavailable or the probe records per-event
      dataclasses (which have no tuple buffer to columnize);
    * ``"auto"`` — ``vector`` when numpy is present and the buffer is
      a streaming columnar store (whose columns are already packed),
      ``scan`` otherwise.

    The path taken, events scanned, and any fallback reason land in
    ``instrument.match_*`` telemetry when a session is recording.
    """
    if matcher not in MATCHERS:
        raise ValueError(
            f"unknown matcher {matcher!r} (expected one of {', '.join(MATCHERS)})"
        )
    result = MatchResult(testcase=testcase)
    buf = getattr(probe, "_buf", None)
    path, reason = _matcher_path(matcher, buf)
    started = time.perf_counter()
    scanned = 0
    if path == "vector":
        from .matchkernel import columns_of, match_columns

        columns = columns_of(buf)
        if columns is None:  # pragma: no cover - numpy lost post-policy
            path, reason = "scan", "no_numpy"
        else:
            scanned = match_columns(columns, model_start_lines, result, warn)
    if path == "scan":
        if buf is not None:
            if getattr(buf, "streaming", False):
                # Columnar store: two passes over the (re-iterable)
                # stream; decoded tuples are transient, so nothing here
                # may key on object identity or retain events.
                _match_streaming(buf, model_start_lines, result, warn)
            else:
                # Batched probe: consume the flat tuple buffer directly
                # (it is already in sequence order) without
                # materialising dataclasses.
                _match_batched(buf, model_start_lines, result, warn)
        else:
            _match_var_events(probe.var_events, result)
            _match_port_events(
                probe.port_writes,
                probe.port_reads,
                model_start_lines,
                initial_tokens,
                result,
                warn,
            )
    _record_match_telemetry(
        telemetry, probe, buf, path, reason, scanned,
        time.perf_counter() - started,
    )
    return result


def _matcher_path(matcher: str, buf: Any) -> Tuple[str, Optional[str]]:
    """Resolve the knob to the path taken plus a fallback reason.

    A non-``None`` reason is recorded whenever a vector-eligible
    request (``auto`` or explicit ``vector``) degraded to scan — it
    explains a low ``instrument.match_vector_share``.
    """
    if matcher == "scan":
        return "scan", None
    if buf is None:
        # Per-event dataclass probe (interpreter engine): there is no
        # flat tuple buffer to columnize.
        return "scan", "per_event_probe"
    from .matchkernel import HAVE_NUMPY

    if not HAVE_NUMPY:
        return "scan", "no_numpy"
    if matcher == "vector":
        return "vector", None
    if getattr(buf, "streaming", False):
        return "vector", None
    # auto + in-memory tuple buffer: columnizing would pay an O(n)
    # encode pass first, so the single-pass scan stays the default.
    return "scan", "memory_buffer"


def _record_match_telemetry(
    telemetry: Any,
    probe: ProbeRuntime,
    buf: Any,
    path: str,
    reason: Optional[str],
    scanned: int,
    seconds: float,
) -> None:
    tel = telemetry
    if tel is None:
        from ..obs import get_telemetry

        tel = get_telemetry()
    if not getattr(tel, "enabled", False):
        return
    if path == "scan":  # the vector kernel already counted its rows
        scanned = len(buf) if buf is not None else sum(probe.event_counts())
    metrics = tel.metrics
    metrics.counter("instrument.match_runs", path=path).inc()
    metrics.counter("instrument.match_events_scanned", path=path).inc(scanned)
    if reason is not None:
        metrics.counter("instrument.match_fallback", reason=reason).inc()
    metrics.histogram("instrument.match_seconds", path=path).observe(seconds)


def _match_batched(
    buf: List[tuple],
    model_start_lines: Dict[str, int],
    result: MatchResult,
    warn: bool,
) -> None:
    """Single-pass matcher over the batched probe buffer.

    Semantically identical to :func:`_match_var_events` +
    :func:`_match_port_events`: var events pair inline against the
    running last-def map, port writes build the per-signal index maps
    (later writes of the same token overwrite earlier ones, i.e. last
    by sequence wins), and port reads resolve after all writes — the
    same order the dataclass path imposes by sorting on ``seq``.
    """
    last_def: Dict[Tuple[str, str], int] = {}
    pairs = result.pairs
    add_pair = pairs.add
    per_signal: Dict[str, Dict[int, tuple]] = {}
    reads: List[tuple] = []
    append_read = reads.append
    last_def_get = last_def.get
    # Use events are *shared per-site tuples* (the batched instrumenter
    # preallocates one tuple per def/use site), and the buffer keeps
    # every event alive for the duration of the match — so ``id(ev)``
    # is a stable, collision-free key.  Memoizing the unpacked site and
    # the def-lines already paired turns the steady state (the same
    # site firing once per period) into two int-keyed dict hits.
    use_memo: Dict[int, tuple] = {}
    use_memo_get = use_memo.get
    for ev in buf:
        tag = ev[0]
        if tag == 0:  # TAG_USE: (tag, var, model, line)
            site = use_memo_get(id(ev))
            if site is None:
                # ((model, var), var, use_line, paired def_lines)
                site = ((ev[2], ev[1]), ev[1], ev[3], set())
                use_memo[id(ev)] = site
            def_line = last_def_get(site[0])
            if def_line is not None:
                seen = site[3]
                if def_line not in seen:
                    seen.add(def_line)
                    model = site[0][0]
                    add_pair((site[1], model, def_line, model, site[2]))
        elif tag == 1:  # TAG_DEF: (tag, var, model, line)
            last_def[(ev[2], ev[1])] = ev[3]
        elif tag == 2:  # TAG_PW: (tag, signal, token_index, var, model, line, kind)
            sig_map = per_signal.get(ev[1])
            if sig_map is None:
                sig_map = per_signal[ev[1]] = {}
            sig_map[ev[2]] = ev
        else:
            append_read(ev)

    # Per signal: (index map, sorted indices or None, greatest index).
    # ``None`` marks a *dense* map — one write at every token index from
    # 0 to the maximum — where the floor lookup ("greatest write index
    # <= token") is a clamp plus one dict hit instead of a bisect.
    # Rate-1 signals written every period (the common case) are dense.
    sig_info: Dict[str, tuple] = {}
    for sig, idx_map in per_signal.items():
        indices = sorted(idx_map)
        last = indices[-1]
        dense = indices[0] == 0 and last == len(indices) - 1
        sig_info[sig] = (idx_map, None if dense else indices, last)
    sig_info_get = sig_info.get
    bisect_right = bisect.bisect_right
    testbench = WriterKind.TESTBENCH
    start_lines_get = model_start_lines.get
    warned: Set[str] = set()
    for ev in reads:
        # (tag, signal, token_index, port, reader_model,
        #  anchor_model, anchor_line, undriven)
        if ev[7]:  # undriven
            desc = f"{ev[4]}.{ev[3]}"
            if desc not in warned:
                warned.add(desc)
                result.use_without_def.append(desc)
                if warn:
                    warnings.warn(
                        f"use of port {desc} without any definition "
                        f"(signal {ev[1]!r} has no driver): undefined "
                        f"behaviour per the SystemC-AMS standard",
                        UseWithoutDefWarning,
                        stacklevel=2,
                    )
            continue
        token_index = ev[2]
        if token_index < 0:
            continue
        info = sig_info_get(ev[1])
        if info is None:
            continue
        idx_map, indices, last = info
        if indices is None:
            w = idx_map[token_index if token_index <= last else last]
        else:
            pos = bisect_right(indices, token_index) - 1
            if pos < 0:
                continue
            w = idx_map[indices[pos]]
        if w[6] is testbench:
            start = start_lines_get(ev[4])
            if start is None:
                continue
            add_pair((ev[3], ev[4], start, ev[5], ev[6]))
        else:
            add_pair((w[3], w[4], w[5], ev[5], ev[6]))


class _SignalWrites:
    """Run-length compressed per-signal write index for streaming.

    The batched matcher keeps one dict entry per written token; for a
    streamed million-event run that is exactly the O(events) footprint
    the store removes, so this index compresses the common shape —
    consecutive token indices written by the same source site — into
    ``(start, end, site)`` runs, with a small exception dict for
    out-of-order or re-written tokens.  Periodic single-site writers
    (every bundled system) collapse to a handful of runs regardless of
    simulation length.

    Last-by-sequence semantics are preserved structurally: a run entry
    at token ``t`` is only ever created while the frontier (greatest
    token seen) is below ``t``, whereas an exception at ``t`` is
    created at or behind the frontier — i.e. strictly later in the
    stream — so on a floor query an exception shadows a run entry at
    the same token, and dict assignment keeps the last exception.
    """

    __slots__ = (
        "run_starts", "run_ends", "run_sites",
        "exceptions", "_exc_sorted", "_exc_dirty",
    )

    def __init__(self) -> None:
        self.run_starts: List[int] = []
        self.run_ends: List[int] = []
        self.run_sites: List[tuple] = []
        self.exceptions: Dict[int, tuple] = {}
        self._exc_sorted: List[int] = []
        self._exc_dirty = False

    def add(self, token: int, site: tuple) -> None:
        ends = self.run_ends
        if ends:
            frontier = ends[-1]
            if token == frontier + 1 and site == self.run_sites[-1]:
                ends[-1] = token
                return
            if token <= frontier:
                self.exceptions[token] = site
                self._exc_dirty = True
                return
        self.run_starts.append(token)
        ends.append(token)
        self.run_sites.append(site)

    def floor(self, token: int) -> Optional[tuple]:
        """Site of the last-by-seq write at the greatest index <= token."""
        best_token = -1
        best: Optional[tuple] = None
        pos = bisect.bisect_right(self.run_starts, token) - 1
        if pos >= 0:
            best_token = min(token, self.run_ends[pos])
            best = self.run_sites[pos]
        if self.exceptions:
            if self._exc_dirty:
                self._exc_sorted = sorted(self.exceptions)
                self._exc_dirty = False
            epos = bisect.bisect_right(self._exc_sorted, token) - 1
            if epos >= 0:
                exc_token = self._exc_sorted[epos]
                if exc_token >= best_token:  # >=: exceptions are later-seq
                    return self.exceptions[exc_token]
        return best


def _match_streaming(
    buf,
    model_start_lines: Dict[str, int],
    result: MatchResult,
    warn: bool,
) -> None:
    """Two-pass matcher over a streaming (columnar) probe store.

    Pass 1 pairs var events inline (they only depend on earlier events)
    and folds port writes into :class:`_SignalWrites` indexes; pass 2
    re-iterates the stream and resolves port reads against the complete
    write index — the same all-writes-before-any-read order the batched
    matcher imposes by collecting reads into a list.  Produces exactly
    the pair set of :func:`_match_batched` without ever holding the
    event stream in memory.
    """
    last_def: Dict[Tuple[str, str], int] = {}
    last_def_get = last_def.get
    add_pair = result.pairs.add
    per_signal: Dict[str, _SignalWrites] = {}
    for ev in buf:
        tag = ev[0]
        if tag == 0:  # TAG_USE: (tag, var, model, line)
            def_line = last_def_get((ev[2], ev[1]))
            if def_line is not None:
                add_pair((ev[1], ev[2], def_line, ev[2], ev[3]))
        elif tag == 1:  # TAG_DEF: (tag, var, model, line)
            last_def[(ev[2], ev[1])] = ev[3]
        elif tag == 2:  # TAG_PW: (tag, signal, token_index, var, model, line, kind)
            writes = per_signal.get(ev[1])
            if writes is None:
                writes = per_signal[ev[1]] = _SignalWrites()
            writes.add(ev[2], (ev[3], ev[4], ev[5], ev[6]))

    per_signal_get = per_signal.get
    testbench = WriterKind.TESTBENCH
    start_lines_get = model_start_lines.get
    warned: Set[str] = set()
    for ev in buf:
        # (tag, signal, token_index, port, reader_model,
        #  anchor_model, anchor_line, undriven)
        if ev[0] != 3:
            continue
        if ev[7]:  # undriven
            desc = f"{ev[4]}.{ev[3]}"
            if desc not in warned:
                warned.add(desc)
                result.use_without_def.append(desc)
                if warn:
                    warnings.warn(
                        f"use of port {desc} without any definition "
                        f"(signal {ev[1]!r} has no driver): undefined "
                        f"behaviour per the SystemC-AMS standard",
                        UseWithoutDefWarning,
                        stacklevel=2,
                    )
            continue
        if ev[2] < 0:
            continue
        writes = per_signal_get(ev[1])
        if writes is None:
            continue
        site = writes.floor(ev[2])
        if site is None:
            continue
        if site[3] is testbench:
            start = start_lines_get(ev[4])
            if start is None:
                continue
            add_pair((ev[3], ev[4], start, ev[5], ev[6]))
        else:
            add_pair((site[0], site[1], site[2], ev[5], ev[6]))


def _match_var_events(events: List[VarEvent], result: MatchResult) -> None:
    last_def: Dict[Tuple[str, str], int] = {}
    # Events are appended in execution order; no re-sort needed.
    for ev in events:
        key = (ev.model, ev.var)
        if ev.is_def:
            last_def[key] = ev.line
        else:
            def_line = last_def.get(key)
            if def_line is None:
                # Value predates processing (initialize()/constructor):
                # not a def-use pair within the analysed scope.
                continue
            result.pairs.add((ev.var, ev.model, def_line, ev.model, ev.line))


def _match_port_events(
    writes: List[PortWriteEvent],
    reads: List[PortReadEvent],
    model_start_lines: Dict[str, int],
    initial_tokens: Dict[str, int],
    result: MatchResult,
    warn: bool,
) -> None:
    # Per signal: sorted token indices with their (last-by-seq) write event.
    per_signal: Dict[str, Dict[int, PortWriteEvent]] = {}
    for w in sorted(writes, key=lambda w: w.seq):
        per_signal.setdefault(w.signal, {})[w.token_index] = w
    sorted_indices: Dict[str, List[int]] = {
        sig: sorted(idx_map) for sig, idx_map in per_signal.items()
    }

    warned: Set[str] = set()
    for r in reads:
        if r.undriven:
            desc = f"{r.reader_model}.{r.port}"
            if desc not in warned:
                warned.add(desc)
                result.use_without_def.append(desc)
                if warn:
                    warnings.warn(
                        f"use of port {desc} without any definition "
                        f"(signal {r.signal!r} has no driver): undefined "
                        f"behaviour per the SystemC-AMS standard",
                        UseWithoutDefWarning,
                        stacklevel=2,
                    )
            continue
        if r.token_index < 0:
            continue  # reader-side delay: initial value, not a definition
        indices = sorted_indices.get(r.signal, [])
        pos = bisect.bisect_right(indices, r.token_index) - 1
        if pos < 0:
            # No write at or before this token: priming tokens are
            # initial values; anything else is a repetition of the
            # initial value and likewise carries no definition.
            continue
        w = per_signal[r.signal][indices[pos]]
        if w.kind is WriterKind.TESTBENCH:
            start = model_start_lines.get(r.reader_model)
            if start is None:
                continue
            result.pairs.add(
                (r.port, r.reader_model, start, r.anchor_model, r.anchor_line)
            )
        else:
            result.pairs.add((w.var, w.model, w.line, r.anchor_model, r.anchor_line))
