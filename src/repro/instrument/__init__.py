"""Dynamic analysis: instrumentation, probes, event matching, runner."""

from .instrumenter import (
    PROBE_NAME,
    compile_processing_ast,
    install_processing_ast,
    instrument_processing,
    restore_processing,
)
from .matching import MATCHERS, MatchResult, match_events
from .parallel_print import ParallelPrint, tap_signal
from .probes import (
    PortReadEvent,
    PortWriteEvent,
    ProbeRuntime,
    UseWithoutDefWarning,
    VarEvent,
    WriterKind,
)
from .runner import ClusterFactory, DynamicAnalyzer, DynamicResult

__all__ = [
    "ClusterFactory",
    "MATCHERS",
    "DynamicAnalyzer",
    "DynamicResult",
    "MatchResult",
    "PROBE_NAME",
    "ParallelPrint",
    "PortReadEvent",
    "PortWriteEvent",
    "ProbeRuntime",
    "UseWithoutDefWarning",
    "VarEvent",
    "WriterKind",
    "compile_processing_ast",
    "install_processing_ast",
    "instrument_processing",
    "match_events",
    "restore_processing",
    "tap_signal",
]
