"""Test input signals (stimuli).

A stimulus is a named waveform ``f(t_seconds) -> value`` installed on a
:class:`~repro.tdf.library.sources.StimulusSource` by a testcase.  The
paper's testcases are exactly such signals (e.g. TC2: "a time
continuous signal from 0 V to 0.65 V and back to 0 V"); the classes
below cover the waveform shapes both case studies need, plus seeded
random stimuli standing in for the constrained-random generation the
paper delegates to CRAVE.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, List, Optional, Sequence, Tuple

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit integer.

    A pure function — no RNG object, no hidden state — so two processes
    mixing the same ``(seed, tick)`` always produce the same value.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class Stimulus:
    """Base class: a named time-domain waveform."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Constant(Stimulus):
    """A constant level (the paper's TC1/TC3 shape)."""

    def __init__(self, value: float, name: str = "") -> None:
        super().__init__(name or f"const({value})")
        self.value = value

    def __call__(self, t: float) -> float:
        return self.value


class Step(Stimulus):
    """Steps from ``initial`` to ``final`` at ``at`` seconds."""

    def __init__(self, initial: float, final: float, at: float, name: str = "") -> None:
        super().__init__(name or f"step({initial}->{final}@{at})")
        self.initial = initial
        self.final = final
        self.at = at

    def __call__(self, t: float) -> float:
        return self.final if t >= self.at else self.initial


class RampUpDown(Stimulus):
    """Ramp from ``lo`` to ``hi`` and back (the paper's TC2 shape).

    Rises over ``[0, t_up]``, holds ``hi`` until ``t_hold_end``, falls
    back to ``lo`` by ``t_end``, then stays at ``lo``.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        t_up: float,
        t_hold_end: float,
        t_end: float,
        name: str = "",
    ) -> None:
        if not 0 < t_up <= t_hold_end <= t_end:
            raise ValueError(
                f"need 0 < t_up <= t_hold_end <= t_end, got "
                f"{t_up}, {t_hold_end}, {t_end}"
            )
        super().__init__(name or f"ramp({lo}<->{hi})")
        self.lo = lo
        self.hi = hi
        self.t_up = t_up
        self.t_hold_end = t_hold_end
        self.t_end = t_end

    def __call__(self, t: float) -> float:
        if t < self.t_up:
            return self.lo + (self.hi - self.lo) * (t / self.t_up)
        if t < self.t_hold_end:
            return self.hi
        if t < self.t_end:
            frac = (t - self.t_hold_end) / (self.t_end - self.t_hold_end)
            return self.hi - (self.hi - self.lo) * frac
        return self.lo


class Sine(Stimulus):
    """``offset + amplitude*sin(2*pi*f*t + phase)``."""

    def __init__(
        self,
        amplitude: float,
        frequency_hz: float,
        offset: float = 0.0,
        phase: float = 0.0,
        name: str = "",
    ) -> None:
        super().__init__(name or f"sine({amplitude}@{frequency_hz}Hz)")
        self.amplitude = amplitude
        self.frequency_hz = frequency_hz
        self.offset = offset
        self.phase = phase

    def __call__(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2 * math.pi * self.frequency_hz * t + self.phase
        )


class Pulse(Stimulus):
    """Periodic rectangular pulse: ``hi`` for ``width`` of each ``period``."""

    def __init__(
        self,
        lo: float,
        hi: float,
        period: float,
        width: float,
        delay: float = 0.0,
        name: str = "",
    ) -> None:
        if period <= 0 or not 0 < width <= period:
            raise ValueError(f"need period > 0 and 0 < width <= period")
        super().__init__(name or f"pulse({lo}/{hi})")
        self.lo = lo
        self.hi = hi
        self.period = period
        self.width = width
        self.delay = delay

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.lo
        phase = (t - self.delay) % self.period
        return self.hi if phase < self.width else self.lo


class Pwl(Stimulus):
    """Piecewise-linear waveform through ``(time, value)`` points."""

    def __init__(self, points: Sequence[Tuple[float, float]], name: str = "") -> None:
        if len(points) < 1:
            raise ValueError("PWL needs at least one point")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise ValueError("PWL points must be sorted by time")
        super().__init__(name or "pwl")
        self.points = [(float(t), float(v)) for t, v in points]

    def __call__(self, t: float) -> float:
        times = [p[0] for p in self.points]
        i = bisect.bisect_right(times, t) - 1
        if i < 0:
            return self.points[0][1]
        if i >= len(self.points) - 1:
            return self.points[-1][1]
        t0, v0 = self.points[i]
        t1, v1 = self.points[i + 1]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


class SeededNoise(Stimulus):
    """Uniform noise in ``[lo, hi]``, deterministic per seed and time.

    Sampling is *stateless*: the value at time ``t`` is a SplitMix64
    mix of the constructor seed and the quantised ``t``, so re-runs,
    out-of-order sampling and worker processes all see the identical
    waveform.  The seed is fixed at construction time — per testcase,
    never per process — which is what keeps ``--workers N`` runs
    byte-identical to serial ones; constructing an RNG object per
    sample (or, worse, per process) is exactly the failure mode this
    implementation rules out.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        seed: int,
        quantum: float = 1e-6,
        name: str = "",
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        super().__init__(name or f"noise[{lo},{hi}]#{seed}")
        self.lo = lo
        self.hi = hi
        self.seed = seed
        self.quantum = quantum

    def __call__(self, t: float) -> float:
        tick = round(t / self.quantum)
        h = _mix64((self.seed * 0x9E3779B97F4A7C15) ^ tick)
        return self.lo + (self.hi - self.lo) * (h / 2.0 ** 64)


class Offset(Stimulus):
    """Adds a constant to another stimulus."""

    def __init__(self, base: Stimulus, offset: float, name: str = "") -> None:
        super().__init__(name or f"{base.name}+{offset}")
        self.base = base
        self.offset = offset

    def __call__(self, t: float) -> float:
        return self.base(t) + self.offset


class Sum(Stimulus):
    """Pointwise sum of several stimuli (e.g. signal + noise)."""

    def __init__(self, parts: Sequence[Stimulus], name: str = "") -> None:
        if not parts:
            raise ValueError("Sum needs at least one stimulus")
        super().__init__(name or "+".join(p.name for p in parts))
        self.parts = list(parts)

    def __call__(self, t: float) -> float:
        return sum(p(t) for p in self.parts)


class Clip(Stimulus):
    """Clamps another stimulus into ``[lo, hi]``."""

    def __init__(self, base: Stimulus, lo: float, hi: float, name: str = "") -> None:
        if lo > hi:
            raise ValueError(f"clip bounds inverted: {lo} > {hi}")
        super().__init__(name or f"clip({base.name})")
        self.base = base
        self.lo = lo
        self.hi = hi

    def __call__(self, t: float) -> float:
        return min(max(self.base(t), self.lo), self.hi)
