"""Testbench layer: stimuli, testcases, suites and random generation."""

from .generate import (
    Accumulator,
    Decimator,
    Expander,
    build_cluster,
    build_random_cluster,
    random_cluster_factory,
    random_cluster_params,
    random_suite,
)
from .stimuli import (
    Clip,
    Constant,
    Offset,
    Pulse,
    Pwl,
    RampUpDown,
    SeededNoise,
    Sine,
    Step,
    Stimulus,
    Sum,
)
from .testcase import TestCase, TestSuite, waveform_testcase

__all__ = [
    "Accumulator",
    "Clip",
    "Constant",
    "Decimator",
    "Expander",
    "Offset",
    "Pulse",
    "Pwl",
    "RampUpDown",
    "SeededNoise",
    "Sine",
    "Step",
    "Stimulus",
    "Sum",
    "TestCase",
    "TestSuite",
    "build_cluster",
    "build_random_cluster",
    "random_cluster_factory",
    "random_cluster_params",
    "random_suite",
    "waveform_testcase",
]
