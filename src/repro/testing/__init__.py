"""Testbench layer: stimuli, testcases and suites."""

from .stimuli import (
    Clip,
    Constant,
    Offset,
    Pulse,
    Pwl,
    RampUpDown,
    SeededNoise,
    Sine,
    Step,
    Stimulus,
    Sum,
)
from .testcase import TestCase, TestSuite, waveform_testcase

__all__ = [
    "Clip",
    "Constant",
    "Offset",
    "Pulse",
    "Pwl",
    "RampUpDown",
    "SeededNoise",
    "Sine",
    "Step",
    "Stimulus",
    "Sum",
    "TestCase",
    "TestSuite",
    "waveform_testcase",
]
