"""Random multirate-cluster generation (fuzzing support).

Promoted from the block-engine equivalence tests so the same cluster
shapes serve three consumers:

* the Hypothesis property tests (``tests/tdf/test_block_engine.py``)
  draw ``(values, up_rate, down_rate)`` parameters via
  :func:`values_strategy` / :func:`rate_strategy`;
* the mutation subsystem (:mod:`repro.mutation`) fuzzes random clusters
  through ``repro-dft mutate random`` using the seeded, importable
  :func:`random_cluster_factory` / :func:`random_suite` pair — worker
  processes rebuild identical clusters from ``(ref, seed)`` alone;
* future tests that need a small but genuinely multirate cluster with
  an instrumentable DUT.

The generated topology is ``src -> gain -> expander -> accumulator ->
decimator -> sink``: one redefining element, two multirate elements and
one analyzable stateful module with branches — small enough to simulate
in milliseconds, rich enough to exercise the schedule compiler's
partitioning and every mutation-operator family.

Hypothesis is an optional (dev-only) dependency; the strategy helpers
import it lazily so the core package stays dependency-free.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..tdf import Cluster, TdfIn, TdfModule, TdfOut, ms
from ..tdf.library import CollectorSink, GainTdf, StimulusSource
from .stimuli import RampUpDown, SeededNoise, Step
from .testcase import TestCase, waveform_testcase

#: Source timestep in milliseconds: 6 ms is divisible by every drawn
#: rate (1..3), so every propagated module timestep stays a whole
#: femtosecond count.
BASE_MS = 6

#: Bounds shared by the Hypothesis strategies and the seeded generator.
VALUE_RANGE = (-5.0, 5.0)
RATE_RANGE = (1, 3)
LENGTH_RANGE = (2, 10)


class Expander(TdfModule):
    """1 in -> r out per activation (zero-order hold)."""

    def __init__(self, rate: int, name: str = "up") -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self._rate = rate

    def set_attributes(self) -> None:
        self.op.set_rate(self._rate)

    def processing(self) -> None:
        value = self.ip.read()
        for i in range(self.op.rate):
            self.op.write(value, i)


class Decimator(TdfModule):
    """r in -> 1 out per activation (average)."""

    def __init__(self, rate: int, name: str = "down") -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self._rate = rate

    def set_attributes(self) -> None:
        self.ip.set_rate(self._rate)

    def processing(self) -> None:
        total = 0.0
        for i in range(self.ip.rate):
            total += self.ip.read(i)
        self.op.write(total / self.ip.rate)


class Accumulator(TdfModule):
    """Analyzable DUT: branches, member state, augmented assignment."""

    def __init__(self, name: str = "dut") -> None:
        super().__init__(name)
        self.ip = TdfIn()
        self.op = TdfOut()
        self.m_acc = 0.0
        self.m_mode = 0

    def processing(self) -> None:
        sample = self.ip.read()
        if sample > 0.5:
            self.m_mode = 1
        elif sample < -0.5:
            self.m_mode = 0
        if self.m_mode == 1:
            self.m_acc += sample
        else:
            self.m_acc = self.m_acc * 0.5
        self.op.write(self.m_acc)


def build_cluster(
    values: Sequence[float], up_rate: int, down_rate: int
) -> Cluster:
    """A fresh multirate cluster replaying ``values`` through the DUT.

    The stimulus source steps through ``values`` (one per ``BASE_MS``
    milliseconds, holding the last); every call builds a brand-new
    cluster (the fresh-instance :data:`ClusterFactory` contract).
    """
    samples = list(values)

    class Top(Cluster):
        def architecture(self) -> None:
            self.src = self.add(StimulusSource(
                "src",
                lambda t: samples[
                    min(int(round(t * 1000 / BASE_MS)), len(samples) - 1)
                ],
                ms(BASE_MS),
            ))
            self.gain = self.add(GainTdf("gain", 2.0))
            self.up = self.add(Expander(up_rate))
            self.dut = self.add(Accumulator())
            self.down = self.add(Decimator(down_rate))
            self.sink = self.add(CollectorSink("sink"))
            self.connect(self.src.op, self.gain.ip)
            self.connect(self.gain.op, self.up.ip)
            self.connect(self.up.op, self.dut.ip)
            self.connect(self.dut.op, self.down.ip)
            self.connect(self.down.op, self.sink.ip)

    return Top("top")


def cluster_duration(values: Sequence[float]):
    """Simulated duration that consumes every stimulus value once."""
    return ms(BASE_MS * len(values))


# -- seeded (plain-random) generation -----------------------------------------

def random_cluster_params(seed: int) -> Tuple[List[float], int, int]:
    """Deterministic ``(values, up_rate, down_rate)`` draw for ``seed``.

    Uses a dedicated :class:`random.Random` instance, so the draw is
    identical in every process — the property the mutation executor's
    worker fan-out relies on.
    """
    rng = random.Random(seed)
    length = rng.randint(*LENGTH_RANGE)
    values = [round(rng.uniform(*VALUE_RANGE), 3) for _ in range(length)]
    return values, rng.randint(*RATE_RANGE), rng.randint(*RATE_RANGE)


def build_random_cluster(seed: int) -> Cluster:
    """A fresh cluster with parameters drawn from ``seed``."""
    values, up_rate, down_rate = random_cluster_params(seed)
    return build_cluster(values, up_rate, down_rate)


def random_cluster_factory(seed: int) -> Callable[[], Cluster]:
    """A :data:`ClusterFactory` for the seed (importable by reference).

    Worker processes resolve ``"repro.testing.generate:
    random_cluster_factory"`` and call it with the shipped seed to
    obtain the same factory the parent used.
    """

    def factory() -> Cluster:
        return build_random_cluster(seed)

    return factory


def random_suite(seed: int) -> List[TestCase]:
    """A small deterministic testsuite for the seeded random cluster.

    Four testcases: the cluster's baked-in sample replay plus a step, a
    ramp and a seeded-noise waveform over the same value range — enough
    variety that mutation kill sets differ between testcases.
    """
    values, _, _ = random_cluster_params(seed)
    duration = cluster_duration(values)
    horizon = BASE_MS * len(values) / 1000.0  # seconds
    lo, hi = VALUE_RANGE
    return [
        TestCase("replay", duration, lambda cluster: None,
                 description="baked-in random sample replay"),
        waveform_testcase(
            "step", duration,
            {"src": Step(lo / 2.0, hi / 2.0, at=horizon / 2.0)},
            description="half-range step at mid-horizon",
        ),
        waveform_testcase(
            "ramp", duration,
            {"src": RampUpDown(lo / 4.0, hi,
                               t_up=horizon / 3.0,
                               t_hold_end=horizon / 2.0,
                               t_end=horizon)},
            description="ramp up, hold, ramp down",
        ),
        waveform_testcase(
            "noise", duration,
            {"src": SeededNoise(lo, hi, seed=seed, quantum=BASE_MS / 1000.0)},
            description="seeded uniform noise",
        ),
    ]


# -- Hypothesis strategies (optional dev dependency) --------------------------

def values_strategy(max_size: int = LENGTH_RANGE[1]):
    """Strategy for the stimulus value list (requires hypothesis)."""
    from hypothesis import strategies as st

    lo, hi = VALUE_RANGE
    return st.lists(
        st.floats(lo, hi, allow_nan=False),
        min_size=LENGTH_RANGE[0], max_size=max_size,
    )


def rate_strategy():
    """Strategy for an expander/decimator rate (requires hypothesis)."""
    from hypothesis import strategies as st

    return st.integers(*RATE_RANGE)
