"""Testcases and testsuites.

A :class:`TestCase` is one test input configuration: a simulated
duration plus a setup callable that installs stimuli on the cluster's
testbench sources (and may tweak any other testbench knob).  A
:class:`TestSuite` is an ordered collection of testcases; suites are
the unit the coverage pipeline executes and the iterative-refinement
workflow grows (paper §VI: "Table II shows four iterations where 9
testcases were added").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..tdf.cluster import Cluster
from ..tdf.time import ScaTime


SetupFn = Callable[[Cluster], None]


@dataclass
class TestCase:
    """One test input signal applied for a fixed duration."""

    #: Tell pytest this is a data type, not a test collection target.
    __test__ = False

    name: str
    duration: ScaTime
    setup: SetupFn
    description: str = ""

    def apply(self, cluster: Cluster) -> None:
        """Install this testcase's stimuli on ``cluster``."""
        self.setup(cluster)

    def __repr__(self) -> str:
        return f"TestCase({self.name!r}, {self.duration})"


def waveform_testcase(
    name: str,
    duration: ScaTime,
    waveforms: Dict[str, Callable[[float], float]],
    description: str = "",
) -> TestCase:
    """Build a testcase that installs waveforms on named sources.

    ``waveforms`` maps a :class:`StimulusSource` module name to the
    waveform callable to install on it.
    """

    def setup(cluster: Cluster) -> None:
        for source_name, waveform in waveforms.items():
            cluster.module(source_name).set_waveform(waveform)  # type: ignore[attr-defined]

    return TestCase(name=name, duration=duration, setup=setup, description=description)


class TestSuite:
    """An ordered, growable collection of testcases."""

    #: Tell pytest this is a data type, not a test collection target.
    __test__ = False

    def __init__(self, name: str, testcases: Optional[Sequence[TestCase]] = None) -> None:
        self.name = name
        self._testcases: List[TestCase] = []
        for tc in testcases or []:
            self.add(tc)

    def add(self, testcase: TestCase) -> None:
        """Append a testcase; names must be unique within the suite."""
        if any(tc.name == testcase.name for tc in self._testcases):
            raise ValueError(f"suite {self.name!r} already has testcase {testcase.name!r}")
        self._testcases.append(testcase)

    def extend(self, testcases: Sequence[TestCase]) -> None:
        """Append several testcases."""
        for tc in testcases:
            self.add(tc)

    @property
    def testcases(self) -> List[TestCase]:
        """The testcases in order."""
        return list(self._testcases)

    def names(self) -> List[str]:
        """The testcase names in order."""
        return [tc.name for tc in self._testcases]

    def __len__(self) -> int:
        return len(self._testcases)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self._testcases)

    def __repr__(self) -> str:
        return f"TestSuite({self.name!r}, {len(self)} testcases)"
