"""Observability for the DFT pipeline and TDF kernel.

``repro.obs`` is the measurement substrate behind every performance
claim in this repo: nestable spans, a labelled metrics registry
(counters / gauges / histograms), and exporters for JSON-lines logs,
human-readable summaries and Chrome/Perfetto trace files.

Disabled by default and zero-cost while disabled; see
:mod:`repro.obs.telemetry` for the enablement model and
:mod:`repro.obs.export` for the output formats.
"""

from .telemetry import (
    NULL_TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Span,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from .export import (
    chrome_trace_events,
    format_tree,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_trend_csv,
    write_trend_jsonl,
)

__all__ = [
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "chrome_trace_events",
    "format_tree",
    "get_telemetry",
    "read_jsonl",
    "set_telemetry",
    "telemetry_session",
    "write_chrome_trace",
    "write_jsonl",
    "write_trend_csv",
    "write_trend_jsonl",
]
