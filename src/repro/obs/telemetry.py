"""Structured telemetry: spans and metrics for the DFT pipeline.

The observability substrate the ROADMAP's performance work hangs off:

* **Spans** — nestable timed regions (name, wall/CPU time, attributes,
  parent) opened with :meth:`Telemetry.span` as context managers.  Span
  trees mirror the paper's Fig. 3 stages (``pipeline`` > ``static`` /
  ``dynamic`` / ``coverage`` > per-testcase / per-simulation work).
* **Metrics** — a registry of labelled counters, gauges and histograms
  (:class:`MetricsRegistry`), fed by the TDF kernel (per-module
  activation counts, per-cluster elaboration timing, signal traffic),
  the instrumentation runner (probe-event counts) and the static
  analysis (per-model timing, association counts by class).

Telemetry is **disabled by default** and zero-cost when disabled: the
per-thread active instance is a :class:`NullTelemetry` singleton whose
``span()`` / metric accessors return shared no-op objects, so the hot
layers pay one attribute check and no allocation.  Enable it for a
region of code with :func:`telemetry_session`::

    from repro.obs import telemetry_session
    from repro.obs.export import write_jsonl

    with telemetry_session() as tel:
        result = run_dft(factory, suite)
    write_jsonl(tel, "run.telemetry.jsonl")

The recorders are intentionally single-threaded (like the TDF kernel);
sharing one :class:`Telemetry` across threads requires external
locking.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count (events, activations, builds)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (schedule length, queue depth)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution of observations with summary statistics."""

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean/p50/p90/p99 in one dict."""
        if not self.values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Holds every metric of one telemetry session, keyed by name+labels."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, dict(key[1]))
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, dict(key[1]))
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, dict(key[1]))
        return metric

    def counters(self) -> List[Counter]:
        return list(self._counters.values())

    def gauges(self) -> List[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def records(self) -> List[Dict[str, Any]]:
        """All metrics as plain-dict records (JSONL / report input)."""
        out: List[Dict[str, Any]] = []
        for c in self._counters.values():
            out.append({
                "type": "metric", "kind": "counter",
                "name": c.name, "labels": c.labels, "value": c.value,
            })
        for g in self._gauges.values():
            out.append({
                "type": "metric", "kind": "gauge",
                "name": g.name, "labels": g.labels, "value": g.value,
            })
        for h in self._histograms.values():
            out.append({
                "type": "metric", "kind": "histogram",
                "name": h.name, "labels": h.labels, "summary": h.summary(),
            })
        return out

    def raw_records(self) -> List[Dict[str, Any]]:
        """Lossless plain-dict form of every metric.

        Unlike :meth:`records` (which summarises histograms), this keeps
        the raw observation lists so a registry can be reconstructed or
        merged elsewhere — the hand-off format parallel workers use to
        fold their telemetry back into the parent session.
        """
        out: List[Dict[str, Any]] = []
        for c in self._counters.values():
            out.append({"kind": "counter", "name": c.name,
                        "labels": c.labels, "value": c.value})
        for g in self._gauges.values():
            out.append({"kind": "gauge", "name": g.name,
                        "labels": g.labels, "value": g.value})
        for h in self._histograms.values():
            out.append({"kind": "histogram", "name": h.name,
                        "labels": h.labels, "values": list(h.values)})
        return out

    def merge_raw(self, records: List[Dict[str, Any]]) -> None:
        """Fold :meth:`raw_records` output from another registry into this one.

        Counters add, histograms concatenate observations, gauges keep
        the last merged value (gauges are point-in-time samples; for the
        kernel gauges involved — schedule lengths per cluster — every
        worker observes the same value anyway).
        """
        for rec in records:
            kind = rec["kind"]
            labels = rec.get("labels", {})
            if kind == "counter":
                self.counter(rec["name"], **labels).inc(rec["value"])
            elif kind == "gauge":
                self.gauge(rec["name"], **labels).set(rec["value"])
            elif kind == "histogram":
                self.histogram(rec["name"], **labels).values.extend(rec["values"])
            else:
                raise ValueError(f"unknown metric record kind {kind!r}")


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class Span:
    """One timed region; a context manager that closes itself on exit."""

    __slots__ = (
        "telemetry", "span_id", "name", "parent_id", "attributes",
        "start_wall", "end_wall", "start_cpu", "end_cpu",
    )

    def __init__(
        self,
        telemetry: "Telemetry",
        span_id: int,
        name: str,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self.telemetry = telemetry
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = time.perf_counter()
        self.start_cpu = time.process_time()
        self.end_wall: Optional[float] = None
        self.end_cpu: Optional[float] = None

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()

    def end(self) -> None:
        """Close the span (idempotent)."""
        if self.end_wall is None:
            self.end_wall = time.perf_counter()
            self.end_cpu = time.process_time()
            self.telemetry._on_span_end(self)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    # -- derived timing ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end_wall is not None

    @property
    def wall(self) -> float:
        """Wall-clock duration in seconds (up to now while still open)."""
        end = self.end_wall if self.end_wall is not None else time.perf_counter()
        return end - self.start_wall

    @property
    def cpu(self) -> float:
        """CPU time consumed in seconds (up to now while still open)."""
        end = self.end_cpu if self.end_cpu is not None else time.process_time()
        return end - self.start_cpu

    def record(self, epoch_wall: float) -> Dict[str, Any]:
        """Plain-dict form; timestamps relative to the session epoch."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts_us": (self.start_wall - epoch_wall) * 1e6,
            "dur_us": self.wall * 1e6,
            "cpu_us": self.cpu * 1e6,
            "attrs": self.attributes,
        }

    def __repr__(self) -> str:
        state = f"{self.wall * 1e3:.3f} ms" if self.closed else "open"
        return f"Span({self.name!r}, {state})"


class Telemetry:
    """A recording telemetry session: span tree + metrics registry."""

    #: Hot layers check this before doing any bookkeeping work.
    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        #: All spans in creation order (open spans included).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: perf_counter value all span timestamps are relative to.
        self.epoch_wall = time.perf_counter()
        #: Absolute session start (for humans / file headers).
        self.started_at = time.time()

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a child span of the current span; use as a context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._next_id, name, parent, dict(attributes))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def current_span(self) -> Optional[Span]:
        """Innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _on_span_end(self, span: Span) -> None:
        # Spans close LIFO in correct usage; tolerate (and repair) an
        # out-of-order end() by popping everything above it too.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def find_spans(self, name: str) -> List[Span]:
        """All spans with exactly this name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def span_names(self) -> List[str]:
        """Distinct span names in first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.name not in seen:
                seen.append(span.name)
        return seen

    # -- export-facing views ---------------------------------------------

    def span_records(self) -> List[Dict[str, Any]]:
        return [s.record(self.epoch_wall) for s in self.spans]

    def to_run(self) -> Dict[str, Any]:
        """The whole session as one plain-dict structure.

        Shape matches what :func:`repro.obs.export.read_jsonl` returns,
        so reporting code works on live sessions and saved files alike.
        """
        return {
            "meta": {"type": "meta", "format": "repro-telemetry", "version": 1,
                     "started_at": self.started_at},
            "spans": self.span_records(),
            "metrics": self.metrics.records(),
        }


# ---------------------------------------------------------------------------
# Disabled mode: shared no-op singletons
# ---------------------------------------------------------------------------


class _NullSpan:
    """No-op span: every operation returns immediately."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def end(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    wall = 0.0
    cpu = 0.0
    closed = True


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    values: List[float] = []
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0}


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _NullMetricsRegistry:
    __slots__ = ()

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counters(self) -> list:
        return []

    def gauges(self) -> list:
        return []

    def histograms(self) -> list:
        return []

    def records(self) -> list:
        return []

    def raw_records(self) -> list:
        return []

    def merge_raw(self, records: list) -> None:
        return None


class NullTelemetry:
    """The disabled-mode telemetry: allocation-free no-ops throughout."""

    enabled = False
    metrics = _NullMetricsRegistry()
    spans: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def find_spans(self, name: str) -> list:
        return []

    def span_names(self) -> list:
        return []

    def span_records(self) -> list:
        return []

    def to_run(self) -> Dict[str, Any]:
        return {"meta": {"type": "meta", "format": "repro-telemetry",
                         "version": 1, "started_at": None},
                "spans": [], "metrics": []}


NULL_TELEMETRY = NullTelemetry()

_active = threading.local()


def get_telemetry() -> Any:
    """The currently active telemetry (the no-op singleton by default).

    The active instance is **per-thread**: a session installed in one
    thread (a service worker executing a shard, say) is invisible to —
    and cannot clobber — sessions in other threads.
    """
    return getattr(_active, "value", NULL_TELEMETRY)


def set_telemetry(telemetry: Any) -> Any:
    """Install ``telemetry`` as the calling thread's active instance;
    returns the previous one."""
    previous = getattr(_active, "value", NULL_TELEMETRY)
    _active.value = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def telemetry_session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Activate a (new or given) :class:`Telemetry` for the ``with`` body.

    Restores the previously active instance on exit, so sessions nest.
    """
    session = telemetry if telemetry is not None else Telemetry()
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
