"""Telemetry exporters: JSON-lines, span-tree summary, Chrome trace.

Three consumers of a recorded :class:`~repro.obs.telemetry.Telemetry`:

* :func:`write_jsonl` / :func:`read_jsonl` — a structured event log,
  one JSON object per line (``meta`` header, then spans, then metrics).
  Round-trips: ``read_jsonl`` returns the same structure
  :meth:`Telemetry.to_run` produces, so the reporting helpers below
  work on live sessions and saved files alike.
* :func:`format_tree` — a human-readable span tree with wall/CPU time
  plus a metrics table (the ``repro telemetry-report`` output).
* :func:`write_chrome_trace` — Chrome trace-event JSON loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev (open the file via
  *Open trace file*): spans become complete (``"ph": "X"``) events,
  counters become counter (``"ph": "C"``) samples at the end of the
  run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

PathOrIO = Union[str, IO[str]]


def _open_for(target: PathOrIO, mode: str):
    if isinstance(target, str):
        return open(target, mode), True
    return target, False


# ---------------------------------------------------------------------------
# JSON-lines event log
# ---------------------------------------------------------------------------


def write_jsonl(telemetry: Any, target: PathOrIO) -> None:
    """Write the session as JSON-lines: meta, spans, metrics (one per line)."""
    run = telemetry.to_run() if hasattr(telemetry, "to_run") else telemetry
    stream, owned = _open_for(target, "w")
    try:
        stream.write(json.dumps(run["meta"]) + "\n")
        for record in run["spans"]:
            stream.write(json.dumps(record) + "\n")
        for record in run["metrics"]:
            stream.write(json.dumps(record) + "\n")
    finally:
        if owned:
            stream.close()


def read_jsonl(target: PathOrIO, strict: bool = True) -> Dict[str, Any]:
    """Load a saved JSONL session back into the ``to_run()`` structure.

    With ``strict=False``, lines that are not valid JSON objects or
    carry an unknown ``type`` are skipped instead of raising; the
    number of skipped lines is returned as ``run["skipped_lines"]``
    (present only in non-strict mode; 0 when the file was clean).
    Telemetry files are
    append-streamed by live processes, so a truncated final line or a
    foreign record must not take down reporting.
    """
    stream, owned = _open_for(target, "r")
    try:
        run: Dict[str, Any] = {"meta": {}, "spans": [], "metrics": []}
        skipped = 0
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if strict:
                    raise
                skipped += 1
                continue
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "meta":
                run["meta"] = record
            elif kind == "span":
                run["spans"].append(record)
            elif kind == "metric":
                run["metrics"].append(record)
            elif strict:
                raise ValueError(f"unknown telemetry record type: {kind!r}")
            else:
                skipped += 1
        if not strict:
            run["skipped_lines"] = skipped
        return run
    finally:
        if owned:
            stream.close()


# ---------------------------------------------------------------------------
# Human-readable summary
# ---------------------------------------------------------------------------


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def format_tree(run: Any, metrics: bool = True) -> str:
    """Render a session (live ``Telemetry`` or loaded run dict) as text."""
    if hasattr(run, "to_run"):
        run = run.to_run()
    lines: List[str] = []

    children: Dict[Any, List[Dict[str, Any]]] = {}
    for span in run["spans"]:
        children.setdefault(span["parent"], []).append(span)

    def emit(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        attr_text = ""
        if attrs:
            attr_text = "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(40 - 2 * depth, 8)}s} "
            f"wall={span['dur_us'] / 1e3:10.3f} ms  "
            f"cpu={span['cpu_us'] / 1e3:10.3f} ms{attr_text}"
        )
        for child in children.get(span["id"], []):
            emit(child, depth + 1)

    if run["spans"]:
        lines.append("spans:")
        for root in children.get(None, []):
            emit(root, 1)
    else:
        lines.append("spans: (none recorded)")

    if metrics and run["metrics"]:
        lines.append("metrics:")
        for record in sorted(
            run["metrics"], key=lambda r: (r["kind"], r["name"], sorted(r["labels"].items()))
        ):
            label = f"{record['name']}{_format_labels(record['labels'])}"
            if record["kind"] == "histogram":
                s = record["summary"]
                if s["count"]:
                    detail = (
                        f"count={s['count']} sum={s['sum']:.6f} mean={s['mean']:.6f} "
                        f"p50={s['p50']:.6f} p99={s['p99']:.6f} max={s['max']:.6f}"
                    )
                else:
                    detail = "count=0"
                lines.append(f"  histogram {label:<58s} {detail}")
            else:
                lines.append(f"  {record['kind']:<9s} {label:<58s} {record['value']}")
        # Derived rates: every ``<base>_hits`` / ``<base>_misses``
        # counter pair with identical labels yields a hit-rate line, so
        # cache effectiveness is readable without a calculator (e.g.
        # ``tdf.schedule_cache_hit_rate``).
        counters: Dict[tuple, float] = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in run["metrics"]
            if r["kind"] == "counter"
        }
        derived: List[str] = []
        for (name, labels), hits in sorted(counters.items()):
            if not name.endswith("_hits"):
                continue
            base = name[: -len("_hits")]
            misses = counters.get((base + "_misses", labels), 0)
            total = hits + misses
            if total:
                label = f"{base}_hit_rate{_format_labels(dict(labels))}"
                derived.append(f"  {'rate':<9s} {label:<58s} {hits / total:.4f}")
        # Batched lockstep execution: aggregate the raw
        # ``tdf.engine_batch_*`` counters into the two numbers that
        # answer "did batching engage, and how well" — mean members per
        # batch and the share of member-firings served by a vectorised
        # batch op (the per-run gauges only keep the *last* batch).
        for (name, labels), runs in sorted(counters.items()):
            if name != "tdf.engine_batch_runs" or not runs:
                continue
            members = counters.get(("tdf.engine_batch_members", labels), 0)
            label = f"tdf.engine_batch_mean_width{_format_labels(dict(labels))}"
            derived.append(f"  {'rate':<9s} {label:<58s} {members / runs:.4f}")
            fires = counters.get(("tdf.engine_batch_member_fires", labels), 0)
            if fires:
                vector = counters.get(
                    ("tdf.engine_batch_vector_fires", labels), 0
                )
                label = (
                    f"tdf.engine_batch_vector_share"
                    f"{_format_labels(dict(labels))}"
                )
                derived.append(
                    f"  {'rate':<9s} {label:<58s} {vector / fires:.4f}"
                )
        # Coverage matching: what share of scanned probe events went
        # through the vectorised kernel, and how fast each path chews
        # through events.  ``instrument.match_events_scanned`` is
        # labelled by path (scan/vector); pairing it with the
        # ``instrument.match_seconds`` histogram sum gives an honest
        # events-per-second per path.
        match_scanned = {
            dict(labels).get("path"): value
            for (name, labels), value in counters.items()
            if name == "instrument.match_events_scanned"
        }
        match_total = sum(match_scanned.values())
        if match_total:
            derived.append(
                f"  {'rate':<9s} {'instrument.match_vector_share':<58s} "
                f"{match_scanned.get('vector', 0) / match_total:.4f}"
            )
        match_seconds = {
            tuple(sorted(r["labels"].items())): r["summary"]["sum"]
            for r in run["metrics"]
            if r["kind"] == "histogram" and r["name"] == "instrument.match_seconds"
        }
        for labels, seconds in sorted(match_seconds.items()):
            scanned = counters.get(
                ("instrument.match_events_scanned", labels), 0
            )
            if seconds > 0 and scanned:
                label = (
                    f"instrument.match_events_per_second"
                    f"{_format_labels(dict(labels))}"
                )
                derived.append(
                    f"  {'rate':<9s} {label:<58s} {scanned / seconds:.1f}"
                )
        if derived:
            lines.append("derived:")
            lines.extend(derived)
    if run.get("skipped_lines"):
        lines.append(f"skipped: {run['skipped_lines']} malformed line(s) ignored")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cross-run coverage-trend export (see repro.obs.store.history)
# ---------------------------------------------------------------------------

#: Column order for trend exports; matches ``history.trend_rows`` keys.
TREND_FIELDS = (
    "run_id",
    "recorded_at",
    "kind",
    "system",
    "fingerprint",
    "config_hash",
    "suite_sha",
    "tests",
    "class",
    "total",
    "covered",
    "percent",
)


def write_trend_jsonl(rows: List[Dict[str, Any]], target: PathOrIO) -> None:
    """Write coverage-trend rows as JSON-lines, one row per line."""
    stream, owned = _open_for(target, "w")
    try:
        for row in rows:
            stream.write(json.dumps({k: row.get(k) for k in TREND_FIELDS}) + "\n")
    finally:
        if owned:
            stream.close()


def write_trend_csv(rows: List[Dict[str, Any]], target: PathOrIO) -> None:
    """Write coverage-trend rows as CSV with a header row."""
    import csv

    stream, owned = _open_for(target, "w")
    try:
        writer = csv.DictWriter(stream, fieldnames=list(TREND_FIELDS),
                                extrasaction="ignore", lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    finally:
        if owned:
            stream.close()


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (chrome://tracing, Perfetto)
# ---------------------------------------------------------------------------


def chrome_trace_events(run: Any) -> List[Dict[str, Any]]:
    """The session as a list of Chrome trace-event dicts."""
    if hasattr(run, "to_run"):
        run = run.to_run()
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": 1, "tid": 1, "name": "process_name",
            "args": {"name": "repro-dft"},
        }
    ]
    end_ts = 0.0
    for span in run["spans"]:
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "name": span["name"],
            "cat": "repro",
            "ts": span["ts_us"],
            "dur": span["dur_us"],
            "args": span.get("attrs") or {},
        })
        end_ts = max(end_ts, span["ts_us"] + span["dur_us"])
    for record in run["metrics"]:
        if record["kind"] != "counter":
            continue
        name = f"{record['name']}{_format_labels(record['labels'])}"
        events.append({
            "ph": "C", "pid": 1, "tid": 1, "name": name, "cat": "repro",
            "ts": end_ts, "args": {"value": record["value"]},
        })
    return events


def write_chrome_trace(telemetry: Any, target: PathOrIO) -> None:
    """Write the session as a Chrome/Perfetto trace-event JSON file."""
    payload = {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
    }
    stream, owned = _open_for(target, "w")
    try:
        json.dump(payload, stream)
    finally:
        if owned:
            stream.close()
