"""Streaming columnar probe store + persistent run history.

Split from :mod:`repro.obs` proper so the telemetry layer stays
import-light; import :mod:`repro.obs.store` explicitly to use the
store.  See :mod:`.probe_store` for the O(1)-memory event recorder and
:mod:`.history` for the cross-run ledger.
"""

from .history import (
    FORMAT as HISTORY_FORMAT,
    RunHistory,
    build_record,
    default_history_dir,
    diff_records,
    format_diff,
    format_history_table,
    format_trend,
    span_percentiles,
    suite_sha,
    trend_rows,
)
from .probe_store import DEFAULT_CHUNK_SIZE, ColumnarProbeStore, ProbeStoreSpec

__all__ = [
    "HISTORY_FORMAT",
    "RunHistory",
    "build_record",
    "default_history_dir",
    "diff_records",
    "format_diff",
    "format_history_table",
    "format_trend",
    "span_percentiles",
    "suite_sha",
    "trend_rows",
    "DEFAULT_CHUNK_SIZE",
    "ColumnarProbeStore",
    "ProbeStoreSpec",
]
