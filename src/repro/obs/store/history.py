"""Persistent run-history database with cross-run diff/trend queries.

Every pipeline entry point (``run_dft``, :class:`IterativeCampaign`,
``run_mutation``, ``generate_suite``) appends one canonical JSON record
per run to an append-only JSONL ledger under the cache directory
(``<cache-dir>/history/history.jsonl``).  A record is keyed by the
static fingerprint, the :class:`~repro.core.config.DftConfig` hash and
the sha1 of the suite's testcase names, and carries the coverage
outcome (per-class totals, criteria verdicts, exercised association
keys), kind-specific payloads (mutation kill matrix, generation
acceptances) and wall-time percentiles pulled from the telemetry span
tree.

On top of the ledger, :func:`diff_records` compares two runs field by
field (a regression diff), :func:`trend_rows` flattens the history into
one row per run per association class (the trend table / exporter
input), and the ``repro-dft history`` CLI renders both.  Warm-start
hooks in mutation and generation use :meth:`RunHistory.latest` to seed
from the most recent matching record.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

FORMAT = "repro-dft-history/1"
FILENAME = "history.jsonl"

#: Association classes in report order (values of ``AssocClass``; kept
#: literal so this module does not import core at load time — core
#: imports obs).
CLASS_ORDER = ("Strong", "Firm", "PFirm", "PWeak")


def default_history_dir(cache_dir: Optional[str] = None) -> str:
    """History directory under ``cache_dir`` (or the default cache)."""
    if cache_dir is None:
        from ...analysis.cache import DEFAULT_CACHE_DIR

        cache_dir = DEFAULT_CACHE_DIR
    return os.path.join(os.path.expanduser(cache_dir), "history")


def suite_sha(names: Iterable[str]) -> str:
    """Stable sha1 of the suite's testcase names, in suite order."""
    return hashlib.sha1("\n".join(names).encode()).hexdigest()[:12]


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(pct / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def span_percentiles(telemetry: Any) -> Dict[str, Dict[str, float]]:
    """Wall-time percentiles of the span tree, grouped by base name.

    Spans like ``dynamic.testcase[t1]`` fold into the ``dynamic.testcase``
    group (everything before the first ``[``), giving per-phase count /
    p50 / p90 / p99 / max distributions.
    """
    groups: Dict[str, List[float]] = {}
    for span in getattr(telemetry, "spans", None) or []:
        base = span.name.split("[", 1)[0]
        groups.setdefault(base, []).append(span.wall)
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(groups):
        values = sorted(groups[name])
        out[name] = {
            "count": len(values),
            "p50": round(_percentile(values, 50), 6),
            "p90": round(_percentile(values, 90), 6),
            "p99": round(_percentile(values, 99), 6),
            "max": round(values[-1], 6),
        }
    return out


def coverage_summary(coverage: Any) -> Dict[str, Any]:
    """The coverage slice of a history record (compact, diffable)."""
    from ...core.criteria import evaluate_all
    from ...core.database import universe_fingerprint

    classes = coverage.class_coverage()
    return {
        "universe": universe_fingerprint(coverage.static),
        "totals": {
            "static": coverage.static_total,
            "exercised": coverage.exercised_total,
            "percent": round(coverage.overall_percent, 2),
        },
        "classes": {
            klass.value: {
                "total": cc.total,
                "covered": cc.covered,
                "percent": None if cc.percent is None else round(cc.percent, 2),
            }
            for klass, cc in classes.items()
        },
        "criteria": {
            str(criterion): satisfied
            for criterion, satisfied in evaluate_all(coverage).items()
        },
        "exercised": sorted(
            "|".join(map(str, assoc.key))
            for assoc in coverage.associations
            if coverage.is_covered(assoc)
        ),
    }


def build_record(
    kind: str,
    *,
    system: Optional[str],
    fingerprint: Optional[str],
    config_hash: str,
    suite_names: Sequence[str],
    coverage: Any = None,
    telemetry: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one canonical (not yet stamped) history record."""
    record: Dict[str, Any] = {
        "format": FORMAT,
        "kind": kind,
        "system": system,
        "fingerprint": fingerprint,
        "config_hash": config_hash,
        "suite_sha": suite_sha(suite_names),
        "tests": len(suite_names),
        "testcases": list(suite_names),
    }
    if coverage is not None:
        record["coverage"] = coverage_summary(coverage)
    if telemetry is not None:
        timings = span_percentiles(telemetry)
        if timings:
            record["timings"] = timings
    if extra:
        record.update(extra)
    return record


class RunHistory:
    """Append-only JSONL ledger of run records under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.expanduser(directory)
        self.path = os.path.join(self.directory, FILENAME)

    # -- writing ------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> str:
        """Stamp ``record`` (run_id + recorded_at) and append it.

        The run id is a content hash over the record *including* the
        timestamp, so re-running an identical configuration still gets
        a distinct ledger entry.  Returns the run id.
        """
        stamped = dict(record)
        stamped.setdefault("format", FORMAT)
        stamped["recorded_at"] = round(time.time(), 3)
        os.makedirs(self.directory, exist_ok=True)
        # The ledger offset participates in the id (but is not stored):
        # two identical runs appended within the same timestamp tick
        # still get distinct ids.
        try:
            offset = os.path.getsize(self.path)
        except OSError:
            offset = 0
        payload = json.dumps(stamped, sort_keys=True, default=str)
        stamped["run_id"] = hashlib.sha1(
            f"{offset}|{payload}".encode()
        ).hexdigest()[:12]
        with open(self.path, "a") as handle:
            handle.write(json.dumps(stamped, sort_keys=True, default=str) + "\n")
        return stamped["run_id"]

    # -- reading ------------------------------------------------------------

    def records(
        self,
        system: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """All matching records, oldest first (malformed lines skipped)."""
        if not os.path.isfile(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict) or record.get("format") != FORMAT:
                    continue
                if system is not None and record.get("system") != system:
                    continue
                if kind is not None and record.get("kind") != kind:
                    continue
                out.append(record)
        if limit is not None:
            out = out[-limit:]
        return out

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Record by (unambiguous prefix of a) run id, or ``None``."""
        matches = [
            record
            for record in self.records()
            if str(record.get("run_id", "")).startswith(run_id)
        ]
        if not matches:
            return None
        if len(matches) > 1 and any(r.get("run_id") != matches[0].get("run_id") for r in matches):
            raise ValueError(f"run id prefix {run_id!r} is ambiguous")
        return matches[-1]

    def latest(
        self,
        kind: Optional[str] = None,
        system: Optional[str] = None,
        fingerprint: Optional[str] = None,
        config_hash: Optional[str] = None,
        suite: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Most recent record matching every given key, or ``None``."""
        for record in reversed(self.records(system=system, kind=kind)):
            if fingerprint is not None and record.get("fingerprint") != fingerprint:
                continue
            if config_hash is not None and record.get("config_hash") != config_hash:
                continue
            if suite is not None and record.get("suite_sha") != suite:
                continue
            return record
        return None


# -- cross-run queries ------------------------------------------------------


def diff_records(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Field-by-field comparison of two history records.

    Identity metadata (run id, timestamps, wall-time percentiles) is
    excluded: two runs of the same configuration on the same design
    diff as identical, which is exactly what the CI smoke job asserts.
    """
    changes: List[str] = []

    def check(label: str, va: Any, vb: Any) -> None:
        if va != vb:
            changes.append(f"{label}: {va!r} -> {vb!r}")

    for field in ("kind", "system", "fingerprint", "config_hash", "suite_sha", "tests"):
        check(field, a.get(field), b.get(field))

    cov_a, cov_b = a.get("coverage") or {}, b.get("coverage") or {}
    check("universe", cov_a.get("universe"), cov_b.get("universe"))
    tot_a, tot_b = cov_a.get("totals") or {}, cov_b.get("totals") or {}
    for field in ("static", "exercised", "percent"):
        check(f"coverage.{field}", tot_a.get(field), tot_b.get(field))
    cls_a, cls_b = cov_a.get("classes") or {}, cov_b.get("classes") or {}
    for klass in CLASS_ORDER:
        check(f"class.{klass}", cls_a.get(klass), cls_b.get(klass))
    crit_a, crit_b = cov_a.get("criteria") or {}, cov_b.get("criteria") or {}
    for criterion in sorted(set(crit_a) | set(crit_b)):
        check(f"criterion.{criterion}", crit_a.get(criterion), crit_b.get(criterion))
    ex_a, ex_b = set(cov_a.get("exercised") or ()), set(cov_b.get("exercised") or ())
    added, removed = sorted(ex_b - ex_a), sorted(ex_a - ex_b)
    if added:
        changes.append(f"exercised.added: {len(added)} ({', '.join(added[:5])}{'...' if len(added) > 5 else ''})")
    if removed:
        changes.append(f"exercised.removed: {len(removed)} ({', '.join(removed[:5])}{'...' if len(removed) > 5 else ''})")

    mut_a, mut_b = a.get("mutation") or {}, b.get("mutation") or {}
    for field in ("score", "killed", "total"):
        check(f"mutation.{field}", mut_a.get(field), mut_b.get(field))
    gen_a, gen_b = a.get("generation") or {}, b.get("generation") or {}
    for field in ("closed", "accepted", "simulations"):
        check(f"generation.{field}", gen_a.get(field), gen_b.get(field))

    return {"identical": not changes, "changes": changes}


def trend_rows(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten records into one row per run per association class.

    Rows carry an ``overall`` class alongside the four paper classes,
    ready for the JSONL/CSV trend exporters and the trend table.
    """
    rows: List[Dict[str, Any]] = []
    for record in records:
        coverage = record.get("coverage") or {}
        base = {
            "run_id": record.get("run_id"),
            "recorded_at": record.get("recorded_at"),
            "kind": record.get("kind"),
            "system": record.get("system"),
            "fingerprint": record.get("fingerprint"),
            "config_hash": record.get("config_hash"),
            "suite_sha": record.get("suite_sha"),
            "tests": record.get("tests"),
        }
        totals = coverage.get("totals") or {}
        rows.append(dict(base, **{
            "class": "overall",
            "total": totals.get("static"),
            "covered": totals.get("exercised"),
            "percent": totals.get("percent"),
        }))
        classes = coverage.get("classes") or {}
        for klass in CLASS_ORDER:
            cc = classes.get(klass) or {}
            rows.append(dict(base, **{
                "class": klass,
                "total": cc.get("total"),
                "covered": cc.get("covered"),
                "percent": cc.get("percent"),
            }))
    return rows


# -- terminal rendering -----------------------------------------------------


def _stamp(record: Dict[str, Any]) -> str:
    recorded = record.get("recorded_at")
    if not isinstance(recorded, (int, float)):
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(recorded))


def format_history_table(records: Sequence[Dict[str, Any]]) -> str:
    """The ``history list`` view: one line per record, oldest first."""
    if not records:
        return "history: no records"
    lines = [
        f"{'run_id':<12}  {'recorded':<19}  {'kind':<10}  "
        f"{'system':<14}  {'tests':>5}  {'coverage':>8}"
    ]
    for record in records:
        totals = (record.get("coverage") or {}).get("totals") or {}
        percent = totals.get("percent")
        lines.append(
            f"{record.get('run_id', '-'):<12}  {_stamp(record):<19}  "
            f"{record.get('kind', '-'):<10}  {str(record.get('system') or '-'):<14}  "
            f"{record.get('tests', 0):>5}  "
            f"{('%.1f%%' % percent) if percent is not None else '-':>8}"
        )
    return "\n".join(lines)


def format_diff(diff: Dict[str, Any]) -> str:
    """Human rendering of a :func:`diff_records` result."""
    if diff["identical"]:
        return "history diff: identical"
    lines = [f"history diff: {len(diff['changes'])} change(s)"]
    lines.extend(f"  {change}" for change in diff["changes"])
    return "\n".join(lines)


def format_trend(rows: Sequence[Dict[str, Any]]) -> str:
    """The trend table: one line per run, one column per class."""
    if not rows:
        return "history: no records"
    by_run: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for row in rows:
        run = str(row.get("run_id"))
        if run not in by_run:
            by_run[run] = {"meta": row}
            order.append(run)
        by_run[run][row["class"]] = row
    columns = ("overall",) + CLASS_ORDER
    header = f"{'run_id':<12}  {'recorded':<19}  {'tests':>5}"
    for name in columns:
        header += f"  {name:>8}"
    lines = [header]
    for run in order:
        bucket = by_run[run]
        meta = bucket["meta"]
        line = (
            f"{run:<12}  "
            f"{_stamp({'recorded_at': meta.get('recorded_at')}):<19}  "
            f"{meta.get('tests', 0):>5}"
        )
        for name in columns:
            percent = (bucket.get(name) or {}).get("percent")
            line += f"  {('%.1f' % percent) if percent is not None else '-':>8}"
        lines.append(line)
    return "\n".join(lines)
