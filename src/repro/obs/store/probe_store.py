"""Streaming columnar probe store with chunked disk spillover.

:class:`ColumnarProbeStore` is a drop-in recording backend for the
batched probe buffer (``ProbeRuntime._buf``): the instrumenter's probe
closures and the block engine's compiled ops only ever call
``.append(event_tuple)`` on the buffer, so the store can stand in for
the plain list.  Every ``chunk_size`` appends, the pending tail is
packed into flat int columns (:mod:`.columns`) and pickled as one frame
onto a single append-only spill file, so a simulation producing
millions of probe events holds at most one chunk of live tuples —
O(1) memory in simulation length.

The store advertises ``streaming = True``; the event matcher
(:mod:`repro.instrument.matching`) detects that and switches to its
two-pass streaming algorithm, which iterates the store twice (decoding
spilled chunks one at a time) instead of holding every tuple alive.

Telemetry (when a session is active) lands under ``obs.store_*``:
``obs.store_rows``, ``obs.store_chunks_spilled``,
``obs.store_spill_bytes`` counters and an ``obs.store_flush_seconds``
histogram of per-chunk flush latency.

:class:`ProbeStoreSpec` is the picklable recipe that crosses process
boundaries (the parallel executor ships it to workers, which build one
store per testcase).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from .columns import (
    HAVE_NUMPY,
    PAYLOAD_COLUMNS,
    TAG_PR,
    TAG_PW,
    _np,
    chunk_tag_counts,
    decode_chunk,
    encode_chunk,
)

#: Rows buffered in memory before a chunk is spilled to disk.
DEFAULT_CHUNK_SIZE = 65536


@dataclass(frozen=True)
class ProbeStoreSpec:
    """Picklable recipe for building a probe store inside any process.

    ``kind`` is ``"memory"`` (plain list buffer — the default recording
    backend) or ``"columnar"``.  ``chunk_size``/``spill_dir`` only apply
    to the columnar store; ``spill_dir=None`` spills into the platform
    temp directory.
    """

    kind: str = "memory"
    chunk_size: Optional[int] = None
    spill_dir: Optional[str] = None

    def make(self, telemetry: Any = None) -> Optional["ColumnarProbeStore"]:
        """Build the store this spec describes (``None`` for in-memory)."""
        if self.kind == "memory":
            return None
        if self.kind != "columnar":
            raise ValueError(f"unknown probe store kind: {self.kind!r}")
        return ColumnarProbeStore(
            chunk_size=self.chunk_size or DEFAULT_CHUNK_SIZE,
            spill_dir=self.spill_dir,
            telemetry=telemetry,
        )

    def make_batched(self, telemetry: Any = None) -> Optional["ColumnarProbeStore"]:
        """Build one *shared* store for a lockstep batch.

        Like :meth:`make`, but the columnar store carries the member
        column so one spill stream can record every lane of a
        :class:`~repro.instrument.probes.BatchProbeBuffer` and still
        demux exactly per testcase.  ``None`` for in-memory (the batch
        buffer then uses its plain tagged list).
        """
        if self.kind == "memory":
            return None
        if self.kind != "columnar":
            raise ValueError(f"unknown probe store kind: {self.kind!r}")
        return ColumnarProbeStore(
            chunk_size=self.chunk_size or DEFAULT_CHUNK_SIZE,
            spill_dir=self.spill_dir,
            telemetry=telemetry,
            member_column=True,
        )


class ColumnarProbeStore:
    """Append-only probe-event buffer with columnar disk spillover."""

    #: Tells the matcher to use its streaming (two-pass) algorithm.
    streaming = True

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        spill_dir: Optional[str] = None,
        telemetry: Any = None,
        member_column: bool = False,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1 (got {chunk_size})")
        self.chunk_size = chunk_size
        self._spill_root = spill_dir
        self._path: Optional[str] = None
        self._file: Any = None
        self._tel = telemetry
        self._tail: List[tuple] = []
        #: When recording a lockstep batch, every event carries the
        #: member (testcase) index in a parallel column so the shared
        #: stream demuxes after spilling (see ``iter_member``).
        self.member_column = member_column
        self._member_tail: Optional[List[int]] = [] if member_column else None
        self._chunks = 0
        self._spilled_rows = 0
        self._spilled_counts = (0, 0, 0)  # (var, write, read) on disk
        self._spill_bytes = 0
        self._strings: List[str] = []
        self._string_ids: dict = {}
        #: Cached ``to_columns()`` result, keyed on the recorded shape
        #: so further appends (or a clear) invalidate it.
        self._columns_cache: Optional[tuple] = None
        self._closed = False

    # -- recording ----------------------------------------------------------

    def append(self, event: tuple) -> None:
        """Record one probe event tuple (list-compatible hot path)."""
        tail = self._tail
        tail.append(event)
        if len(tail) >= self.chunk_size:
            self._flush()

    def append_member(self, member: int, event: tuple) -> None:
        """Record one event tagged with its lockstep member index."""
        assert self._member_tail is not None, "store built without member_column"
        self._tail.append(event)
        self._member_tail.append(member)
        if len(self._tail) >= self.chunk_size:
            self._flush()

    def _flush(self) -> None:
        if not self._tail:
            return
        if self._closed:
            raise ValueError("cannot record into a closed probe store")
        started = time.perf_counter()
        base = encode_chunk(self._tail, self._string_ids, self._strings)
        if self._member_tail is not None:
            payload: Any = (base, tuple(self._member_tail))
            self._member_tail.clear()
        else:
            payload = base
        handle = self._file
        if handle is None:
            if self._spill_root is not None:
                os.makedirs(self._spill_root, exist_ok=True)
            fd, self._path = tempfile.mkstemp(
                prefix="repro-store-", suffix=".bin", dir=self._spill_root
            )
            handle = self._file = os.fdopen(fd, "w+b")
        before = handle.tell()
        try:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException:
            # A partial frame would corrupt every later read; rewind so
            # the spill file stays a clean sequence of whole chunks.
            handle.seek(before)
            handle.truncate()
            raise
        size = handle.tell() - before
        self._chunks += 1
        self._spilled_rows += len(self._tail)
        nv, nw, nr = chunk_tag_counts(base)
        ov, ow, orr = self._spilled_counts
        self._spilled_counts = (ov + nv, ow + nw, orr + nr)
        self._spill_bytes += size
        self._tail.clear()
        tel = self._tel
        if tel is not None and getattr(tel, "enabled", False):
            tel.metrics.counter("obs.store_chunks_spilled").inc()
            tel.metrics.counter("obs.store_spill_bytes").inc(size)
            tel.metrics.histogram("obs.store_flush_seconds").observe(
                time.perf_counter() - started
            )

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return self._spilled_rows + len(self._tail)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[tuple]:
        """Replay every recorded event in order (re-iterable).

        Spilled chunks are decoded lazily, one frame at a time through
        a separate read handle, so iteration keeps the O(1)-memory
        property the store exists for.
        """
        if self._closed:
            raise ValueError("cannot iterate a closed probe store")
        if self._chunks:
            self._file.flush()
            with open(self._path, "rb") as reader:
                for _ in range(self._chunks):
                    payload = pickle.load(reader)
                    if self._member_tail is not None:
                        payload = payload[0]
                    for event in decode_chunk(payload, self._strings):
                        yield event
        for event in self._tail:
            yield event

    def iter_member(self, member: int) -> Iterator[tuple]:
        """Replay one lockstep member's events, in recording order.

        Only available on a ``member_column=True`` store; this is what
        a :class:`~repro.instrument.probes.BatchProbeBuffer` lane
        iterates to hand the matcher a demuxed per-testcase stream.
        """
        members_tail = self._member_tail
        assert members_tail is not None, "store built without member_column"
        if self._closed:
            raise ValueError("cannot iterate a closed probe store")
        if self._chunks:
            self._file.flush()
            with open(self._path, "rb") as reader:
                for _ in range(self._chunks):
                    base, members = pickle.load(reader)
                    for event, owner in zip(
                        decode_chunk(base, self._strings), members
                    ):
                        if owner == member:
                            yield event
        for event, owner in zip(self._tail, members_tail):
            if owner == member:
                yield event

    def to_columns(self) -> Optional[tuple]:
        """The whole stream as flat per-field numpy arrays.

        Returns ``(tags, payload_columns, strings, members)`` — tags
        ``uint8``, each of the seven payload columns ``int64``,
        ``members`` the per-row lockstep member column (``None`` on
        stores built without one) — or ``None`` when numpy is
        unavailable.  Spilled chunks are already columnar, so
        assembling the stream is frame unpickling plus one
        ``np.concatenate`` per column: no per-event tuple is ever
        decoded.  This is what the vectorized matching kernel
        (:mod:`repro.instrument.matchkernel`) consumes; the result is
        cached until further events are recorded.
        """
        if not HAVE_NUMPY:
            return None
        if self._closed:
            raise ValueError("cannot read columns of a closed probe store")
        key = (self._spilled_rows, self._chunks, len(self._tail))
        cached = self._columns_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        tag_parts: List[Any] = []
        col_parts: List[List[Any]] = [[] for _ in range(PAYLOAD_COLUMNS)]
        member_parts: Optional[List[Any]] = (
            [] if self._member_tail is not None else None
        )

        def take(base: tuple, members: Any) -> None:
            tag_parts.append(_np.frombuffer(base[2], dtype=_np.uint8))
            for j, col in enumerate(base[3]):
                col_parts[j].append(_np.asarray(col, dtype=_np.int64))
            if member_parts is not None:
                member_parts.append(_np.asarray(members, dtype=_np.int64))

        if self._chunks:
            self._file.flush()
            with open(self._path, "rb") as reader:
                for _ in range(self._chunks):
                    payload = pickle.load(reader)
                    if self._member_tail is not None:
                        take(payload[0], payload[1])
                    else:
                        take(payload, None)
        if self._tail:
            # Transient encode of the live tail through the store's own
            # string table (ids stay consistent with spilled chunks).
            base = encode_chunk(self._tail, self._string_ids, self._strings)
            take(base, tuple(self._member_tail or ()))
        if tag_parts:
            tags = _np.concatenate(tag_parts)
            cols = tuple(_np.concatenate(parts) for parts in col_parts)
            members = (
                _np.concatenate(member_parts)
                if member_parts is not None else None
            )
        else:
            tags = _np.zeros(0, dtype=_np.uint8)
            cols = tuple(
                _np.zeros(0, dtype=_np.int64) for _ in range(PAYLOAD_COLUMNS)
            )
            members = (
                _np.zeros(0, dtype=_np.int64)
                if member_parts is not None else None
            )
        value = (tags, cols, self._strings, members)
        self._columns_cache = (key, value)
        return value

    def event_counts(self) -> tuple:
        """``(var, write, read)`` event counts without materialising
        spilled chunks (tags are tracked at flush time; only the live
        tail is scanned).  Mirrors ``ProbeRuntime.event_counts``."""
        nv, nw, nr = self._spilled_counts
        for event in self._tail:
            tag = event[0]
            if tag == TAG_PW:
                nw += 1
            elif tag == TAG_PR:
                nr += 1
            else:
                nv += 1
        return (nv, nw, nr)

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded events, in place (closures keep working)."""
        self._tail.clear()
        if self._member_tail is not None:
            self._member_tail.clear()
        if self._file is not None:
            self._file.seek(0)
            self._file.truncate()
        self._chunks = 0
        self._spilled_rows = 0
        self._spilled_counts = (0, 0, 0)
        self._spill_bytes = 0
        self._strings.clear()
        self._string_ids.clear()
        self._columns_cache = None

    def close(self) -> None:
        """Release the spill file; final row count goes to telemetry.

        Idempotent: safe to call from both a consumer's ``finally`` and
        the owner's cleanup path.  After close, recording past a chunk
        boundary, iterating, and ``to_columns`` all raise
        ``ValueError`` — a closed store has unlinked its spill file, so
        silently serving a truncated stream would be worse.
        """
        if self._closed:
            return
        self._closed = True
        tel = self._tel
        if tel is not None and getattr(tel, "enabled", False):
            tel.metrics.counter("obs.store_rows").inc(len(self))
        self._tail.clear()
        if self._member_tail is not None:
            self._member_tail.clear()
        self._columns_cache = None
        self._discard_file()

    def _discard_file(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._file = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._path = None

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self._discard_file()
        except Exception:
            pass
