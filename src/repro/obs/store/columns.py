"""Flat-array columnar encoding of probe-event chunks.

The probe event stream is a sequence of heterogeneous tuples (see
:mod:`repro.instrument.probes`): var uses/defs, port writes and port
reads, discriminated by a small integer tag in slot 0.  This module
packs a *chunk* (a slice of that stream) into flat integer columns:

* every string field (variable, model, signal, port names — and the
  :class:`~repro.instrument.probes.WriterKind` value) is
  dictionary-encoded through a store-global string table, so a column
  is just ``int`` ids;
* the remaining fields (token indices, source lines, the undriven
  flag) are ints already;
* the per-row tag stream plus seven unified payload columns
  (``a``..``g``) hold every event kind — unused slots stay 0.

Columns are ``numpy`` ``int64`` arrays when numpy is importable and
:mod:`array` ``'q'`` arrays otherwise (numpy-optional by design: the
core package must not grow a hard dependency).  A packed chunk is a
plain picklable tuple, so spilling is one :func:`pickle.dump` and a
chunk on disk costs ~9 bytes/row instead of the ~200 bytes a live
Python tuple of boxed ints and strings occupies.

Decoding is the exact inverse: :func:`decode_chunk` yields tuples that
compare equal to the originals (``WriterKind`` round-trips to the same
enum singleton, the undriven flag back to ``bool``), which is what the
byte-identity guarantee of the columnar store rests on.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None
    HAVE_NUMPY = False

#: Event tags, mirroring :mod:`repro.instrument.probes` (kept literal
#: here so the low-level obs layer does not import the instrument
#: package at module load; the values are frozen by the probe ABI).
TAG_USE = 0
TAG_DEF = 1
TAG_PW = 2
TAG_PR = 3

#: Number of unified payload columns (besides the tag stream).
PAYLOAD_COLUMNS = 7

#: Version stamp inside every pickled chunk payload.
CHUNK_FORMAT = "repro-store-chunk/1"


def _make_column(values: List[int]):
    """One flat int64 column from a Python int list."""
    if HAVE_NUMPY:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


def encode_chunk(
    events: Sequence[tuple],
    string_ids: Dict[str, int],
    strings: List[str],
) -> Tuple:
    """Pack ``events`` into the columnar chunk payload.

    ``string_ids`` / ``strings`` are the store-global dictionary (name
    to id and its inverse); new strings are interned into both.  The
    returned payload is ``(CHUNK_FORMAT, n_rows, tags_bytes, columns)``
    with ``columns`` a 7-tuple of flat int arrays.
    """
    tags = bytearray()
    cols: List[List[int]] = [[] for _ in range(PAYLOAD_COLUMNS)]
    a, b, c, d, e, f, g = cols
    sid = string_ids

    def intern(name: str) -> int:
        key = sid.get(name)
        if key is None:
            key = sid[name] = len(strings)
            strings.append(name)
        return key

    for ev in events:
        tag = ev[0]
        tags.append(tag)
        if tag <= TAG_DEF:
            # (tag, var, model, line)
            a.append(intern(ev[1]))
            b.append(intern(ev[2]))
            c.append(ev[3])
            d.append(0)
            e.append(0)
            f.append(0)
            g.append(0)
        elif tag == TAG_PW:
            # (tag, signal, token_index, var, model, line, kind)
            a.append(intern(ev[1]))
            b.append(ev[2])
            c.append(intern(ev[3]))
            d.append(intern(ev[4]))
            e.append(ev[5])
            f.append(intern(ev[6].value))
            g.append(0)
        else:
            # (tag, signal, token_index, port, reader_model,
            #  anchor_model, anchor_line, undriven)
            a.append(intern(ev[1]))
            b.append(ev[2])
            c.append(intern(ev[3]))
            d.append(intern(ev[4]))
            e.append(intern(ev[5]))
            f.append(ev[6])
            g.append(1 if ev[7] else 0)
    return (
        CHUNK_FORMAT,
        len(tags),
        bytes(tags),
        tuple(_make_column(col) for col in cols),
    )


def chunk_tag_counts(payload: Tuple) -> Tuple[int, int, int]:
    """(var, write, read) event counts of a packed chunk."""
    tags = payload[2]
    nw = tags.count(TAG_PW)
    nr = tags.count(TAG_PR)
    return len(tags) - nw - nr, nw, nr


def decode_chunk(payload: Tuple, strings: Sequence[str]) -> Iterator[tuple]:
    """Yield the original event tuples of a packed chunk, in order.

    ``strings`` is the store-global string table the chunk was encoded
    against (the table only grows, so ids stay valid across chunks).
    """
    from ...instrument.probes import WriterKind

    fmt, count, tags, (a, b, c, d, e, f, g) = payload
    if fmt != CHUNK_FORMAT:
        raise ValueError(f"unknown probe-store chunk format: {fmt!r}")
    kind_of = WriterKind  # enum lookup by value returns the singleton
    for i in range(count):
        tag = tags[i]
        if tag <= TAG_DEF:
            yield (tag, strings[a[i]], strings[b[i]], int(c[i]))
        elif tag == TAG_PW:
            yield (
                tag, strings[a[i]], int(b[i]), strings[c[i]],
                strings[d[i]], int(e[i]), kind_of(strings[f[i]]),
            )
        else:
            yield (
                tag, strings[a[i]], int(b[i]), strings[c[i]],
                strings[d[i]], strings[e[i]], int(f[i]), bool(g[i]),
            )
