"""Importable references: ``"package.module:attr"`` strings.

Process-pool workers cannot receive cluster factories or testcases by
pickling — netlists close over lambdas and stimuli are arbitrary
callables — so the parallel executor ships *references* instead: each
worker imports the factory and the suite builder by name and rebuilds
its own instances.  This is the same fresh-instance contract the serial
runner already relies on (see
:data:`repro.instrument.runner.ClusterFactory`), stretched across a
process boundary.
"""

from __future__ import annotations

import importlib
from typing import Any


def resolve_ref(ref: str) -> Any:
    """Import ``"package.module:attr"`` and return the attribute.

    Dotted attribute paths (``module:Class.method``) are followed.
    Raises :class:`ValueError` for a malformed reference and lets
    :class:`ImportError` / :class:`AttributeError` propagate for a
    well-formed one that does not resolve.
    """
    module_name, sep, attr_path = ref.partition(":")
    if not sep or not module_name or not attr_path or ":" in attr_path:
        raise ValueError(
            f"invalid reference {ref!r}: expected 'package.module:attr'"
        )
    target: Any = importlib.import_module(module_name)
    for part in attr_path.split("."):
        target = getattr(target, part)
    return target


def ref_to(obj: Any) -> str:
    """The ``"module:qualname"`` reference of a module-level callable.

    Verifies round-trip resolvability — lambdas, closures and
    interactively defined callables are rejected with a
    :class:`ValueError` since a worker process could never import them.
    """
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"{obj!r} is not an importable module-level callable; "
            f"pass an explicit 'package.module:attr' reference instead"
        )
    ref = f"{module}:{qualname}"
    try:
        resolved = resolve_ref(ref)
    except (ImportError, AttributeError) as exc:
        raise ValueError(f"{obj!r} does not resolve via {ref!r}: {exc}") from exc
    if resolved is not obj:
        raise ValueError(
            f"{ref!r} resolves to a different object than {obj!r}; "
            f"pass an explicit reference instead"
        )
    return ref
