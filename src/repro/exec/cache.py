"""Per-testcase dynamic-result memoization.

The TDF kernel is deterministic and every testcase runs on its own
fresh cluster, so one testcase's :class:`MatchResult` is a pure
function of (cluster structure + model sources, testcase).  The
iterative-refinement workflow exploits that: iteration *k* re-runs the
full cumulative suite (paper §VI — 17, 20, 23, 26 testcases for the
window lifter), yet only the newly added testcases can produce new
results.  Caching per-testcase results across iterations collapses the
window-lifter campaign from 86 testcase executions to 26 without
changing a single reported number.

Keys combine the **static fingerprint** (see
:func:`repro.analysis.cache.fingerprint_cluster` — it covers the model
sources and the netlist) with the testcase name; a cache must only be
shared across runs that use the *same testcase objects* per name, which
is exactly the campaign situation.  The caller owns the cache lifetime
— there is deliberately no process-wide default instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing-only import avoids a cycle
    from ..instrument.matching import MatchResult


class DynamicResultCache:
    """Memo of per-testcase dynamic results, scoped by static fingerprint."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str], "MatchResult"] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, fingerprint: Optional[str], testcase: str) -> Optional["MatchResult"]:
        """The cached result, or ``None``; counts the hit/miss."""
        if fingerprint is None:
            self.misses += 1
            return None
        cached = self._store.get((fingerprint, testcase))
        if cached is None:
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def put(self, fingerprint: Optional[str], testcase: str, result: "MatchResult") -> None:
        """Store one testcase's result (no-op without a fingerprint)."""
        if fingerprint is not None:
            self._store[(fingerprint, testcase)] = result

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
