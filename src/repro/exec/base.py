"""Executor interface for the dynamic-analysis stage.

The dynamic stage runs every testcase of a suite on its own fresh
cluster — no shared state between testcases — which makes the fan-out
strategy *pluggable*: the pipeline hands an executor the static result
and the suite, and gets back one :class:`DynamicResult` whose contents
are identical whichever backend ran it.

Backends:

* :class:`SerialExecutor` — in-process, one testcase after the other
  (the default; equivalent to calling the runner directly);
* :class:`repro.exec.process.ProcessExecutor` — fans testcases out
  across worker processes and merges deterministically.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, TypeVar

from ..obs import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..instrument.runner import ClusterFactory, DynamicResult
    from ..testing.testcase import TestSuite

_T = TypeVar("_T")


def round_robin_shards(items: Sequence[_T], workers: int) -> List[Tuple[_T, ...]]:
    """Stripe ``items`` round-robin into at most ``workers`` shards.

    Striping (rather than chunking) balances heterogeneous per-item
    costs; the shard layout depends only on ``(len(items), workers)``,
    so a parent and its workers always agree on it.  Shared by the
    testcase fan-out (:class:`~repro.exec.process.ProcessExecutor`) and
    the mutant fan-out (:mod:`repro.mutation.executor`).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    count = min(workers, len(items))
    return [tuple(items[i::count]) for i in range(count)]


class DynamicExecutor(abc.ABC):
    """Strategy for executing a testsuite against an instrumented cluster."""

    #: Degree of parallelism the backend uses (1 for serial).
    workers: int = 1

    @abc.abstractmethod
    def run_suite(
        self,
        cluster_factory: "ClusterFactory",
        static: "StaticAnalysisResult",
        suite: "TestSuite",
        warn: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = "auto",
        probe_store=None,
        batch_size: Optional[int] = None,
        matcher: str = "auto",
    ) -> "DynamicResult":
        """Run every testcase of ``suite`` and merge the results.

        The returned :class:`DynamicResult` must order ``per_testcase``
        by the suite's testcase order — never by completion order — so
        downstream reports are byte-identical across backends and
        worker counts.  ``engine`` selects the TDF execution engine for
        the simulations (see :mod:`repro.tdf.engine`); ``probe_store``
        is an optional :class:`~repro.obs.store.ProbeStoreSpec`
        selecting the probe recording backend (results are identical
        whichever backend records).  ``batch_size`` (block engine only)
        runs up to that many testcases in lockstep per simulation batch
        — again with byte-identical results (see
        :meth:`~repro.instrument.runner.DynamicAnalyzer.run_suite_batched`).
        ``matcher`` selects the def-use event-matching implementation
        (``auto``/``scan``/``vector`` — result-identical; see
        :func:`repro.instrument.matching.match_events`).
        """


class SerialExecutor(DynamicExecutor):
    """In-process execution, one testcase at a time (the baseline)."""

    workers = 1

    def run_suite(
        self,
        cluster_factory: "ClusterFactory",
        static: "StaticAnalysisResult",
        suite: "TestSuite",
        warn: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = "auto",
        probe_store=None,
        batch_size: Optional[int] = None,
        matcher: str = "auto",
    ) -> "DynamicResult":
        from ..instrument.runner import DynamicAnalyzer

        analyzer = DynamicAnalyzer(
            cluster_factory, static, warn=warn, telemetry=telemetry,
            engine=engine, probe_store=probe_store, matcher=matcher,
        )
        if batch_size is not None and batch_size > 1:
            return analyzer.run_suite_batched(suite, batch_size)
        return analyzer.run_suite(suite)
