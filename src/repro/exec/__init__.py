"""Execution backends for the dynamic-analysis stage.

The performance layer of the pipeline (ROADMAP: sharding / batching /
caching):

* :class:`SerialExecutor` / :class:`ProcessExecutor` — pluggable
  fan-out of testcases, serial or across worker processes, with
  deterministic (suite-ordered) merging;
* :class:`DynamicResultCache` — per-testcase result memoization that
  collapses the repeated cumulative suites of iterative campaigns;
* :mod:`repro.exec.refs` — the ``"module:attr"`` reference scheme that
  lets worker processes rebuild factories and suites they cannot
  unpickle.
"""

from .base import DynamicExecutor, SerialExecutor, round_robin_shards
from .cache import DynamicResultCache
from .process import ProcessExecutor
from .refs import ref_to, resolve_ref

__all__ = [
    "DynamicExecutor",
    "DynamicResultCache",
    "ProcessExecutor",
    "SerialExecutor",
    "ref_to",
    "resolve_ref",
    "round_robin_shards",
]
