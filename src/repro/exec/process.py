"""Process-pool execution of the dynamic-analysis stage.

Every testcase runs on its own freshly built cluster (the
:data:`~repro.instrument.runner.ClusterFactory` contract), so the
dynamic stage is embarrassingly parallel: shard the testcase names
across worker processes, let each worker rebuild the factory and suite
from importable references (:mod:`repro.exec.refs`), run its shard with
the ordinary serial :class:`~repro.instrument.runner.DynamicAnalyzer`,
and ship the :class:`~repro.instrument.matching.MatchResult`s back.

Determinism: results are merged **by the suite's testcase order**,
never by completion order, and each testcase's result is independent of
every other testcase — so ``--workers 4`` produces byte-identical
coverage reports to ``--workers 1``.

Telemetry: each worker records into a private session and returns its
raw metrics (kernel counters, probe-event counts, per-period timings),
which the parent folds back into its own session together with
per-worker ``exec.worker_seconds`` / ``exec.worker_testcases`` records.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor as _Pool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..obs import Telemetry, get_telemetry, telemetry_session
from .base import DynamicExecutor, round_robin_shards
from .refs import resolve_ref

if TYPE_CHECKING:  # pragma: no cover - typing-only imports avoid cycles
    from ..analysis.cluster_analysis import StaticAnalysisResult
    from ..instrument.matching import MatchResult
    from ..instrument.runner import ClusterFactory, DynamicResult
    from ..testing.testcase import TestSuite


@dataclass(frozen=True)
class _WorkerStatic:
    """The slice of the static result the dynamic matcher needs.

    Shipping the full :class:`StaticAnalysisResult` (per-model analyses,
    AST source info) across the process boundary would be wasteful; the
    runner only reads ``model_start_lines``.
    """

    model_start_lines: Dict[str, int]


@dataclass(frozen=True)
class _WorkerJob:
    """One worker's share of the suite, in picklable form."""

    factory_ref: str
    suite_ref: str
    names: Tuple[str, ...]
    model_start_lines: Tuple[Tuple[str, int], ...]
    warn: bool
    record_telemetry: bool
    engine: str = "auto"
    suite_args: Tuple = ()
    #: Optional probe-store spec (frozen dataclass of primitives, so it
    #: pickles to every worker; each worker builds its own stores).
    probe_store: Optional[Any] = None
    #: Lockstep width for the worker's shard (block engine only;
    #: ``None`` = one testcase at a time).
    batch_size: Optional[int] = None
    #: Event-matching implementation (``auto``/``scan``/``vector``).
    matcher: str = "auto"


def _run_worker(job: _WorkerJob) -> Tuple[List[Tuple[str, "MatchResult"]], List[dict], float]:
    """Worker entry point: run the job's testcases on fresh clusters."""
    import time

    from ..instrument.runner import DynamicAnalyzer

    t0 = time.perf_counter()
    factory = resolve_ref(job.factory_ref)
    testcases = {tc.name: tc for tc in resolve_ref(job.suite_ref)(*job.suite_args)}
    missing = [name for name in job.names if name not in testcases]
    if missing:
        raise LookupError(
            f"suite reference {job.suite_ref!r} does not provide "
            f"testcase(s) {missing}"
        )
    static = _WorkerStatic(model_start_lines=dict(job.model_start_lines))
    results: List[Tuple[str, "MatchResult"]] = []
    # A private session per worker: kernel hooks key off the globally
    # active telemetry, so activating one here captures tdf.* metrics
    # too.  A forked child may have inherited the parent's session
    # object; telemetry_session replaces (and later restores) it.
    with telemetry_session(Telemetry() if job.record_telemetry else None) as tel:
        analyzer = DynamicAnalyzer(
            factory, static, warn=job.warn,
            telemetry=tel if job.record_telemetry else None,
            engine=job.engine, probe_store=job.probe_store,
            matcher=job.matcher,
        )
        if job.batch_size is not None and job.batch_size > 1:
            from ..testing.testcase import TestSuite

            shard = TestSuite(
                "shard", [testcases[name] for name in job.names]
            )
            dynamic = analyzer.run_suite_batched(shard, job.batch_size)
            for name in job.names:
                results.append((name, dynamic.per_testcase[name]))
        else:
            for name in job.names:
                results.append((name, analyzer.run_testcase(testcases[name])))
        payload = tel.metrics.raw_records() if job.record_telemetry else []
    return results, payload, time.perf_counter() - t0


class ProcessExecutor(DynamicExecutor):
    """Fan testcases out across a :class:`concurrent.futures` process pool."""

    def __init__(
        self,
        factory_ref: str,
        suite_ref: str,
        workers: int,
        suite_args: Sequence = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # Fail fast, in the parent, on unresolvable references.
        resolve_ref(factory_ref)
        resolve_ref(suite_ref)
        self.factory_ref = factory_ref
        self.suite_ref = suite_ref
        self.workers = workers
        #: Picklable positional arguments applied to the resolved suite
        #: callable (``resolve_ref(suite_ref)(*suite_args)``) — how
        #: synthesized suites (whose testcase closures cannot be
        #: pickled) travel to workers as plain parameter encodings (see
        #: :func:`repro.generation.space.decode_candidates`).
        self.suite_args = tuple(suite_args)

    def _shards(self, names: Sequence[str]) -> List[Tuple[str, ...]]:
        """Round-robin striping: balances heterogeneous testcase costs."""
        return round_robin_shards(names, self.workers)

    def run_suite(
        self,
        cluster_factory: "ClusterFactory",
        static: "StaticAnalysisResult",
        suite: "TestSuite",
        warn: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[str] = "auto",
        probe_store=None,
        batch_size: Optional[int] = None,
        matcher: str = "auto",
    ) -> "DynamicResult":
        from ..instrument.runner import DynamicResult

        tel = telemetry if telemetry is not None else get_telemetry()
        names = [tc.name for tc in suite]
        result = DynamicResult()
        if not names:
            return result

        # Validate up front that the workers will see the same suite.
        provided = {tc.name for tc in resolve_ref(self.suite_ref)(*self.suite_args)}
        unknown = [name for name in names if name not in provided]
        if unknown:
            raise LookupError(
                f"suite reference {self.suite_ref!r} does not provide "
                f"testcase(s) {unknown}; parallel execution needs every "
                f"testcase to be rebuildable by name in the workers"
            )

        shards = self._shards(names)
        jobs = [
            _WorkerJob(
                factory_ref=self.factory_ref,
                suite_ref=self.suite_ref,
                names=shard,
                model_start_lines=tuple(static.model_start_lines.items()),
                warn=warn,
                record_telemetry=tel.enabled,
                engine=engine if engine is not None else "auto",
                suite_args=self.suite_args,
                probe_store=probe_store,
                batch_size=batch_size,
                matcher=matcher,
            )
            for shard in shards
        ]
        per_name: Dict[str, "MatchResult"] = {}
        with tel.span(
            "dynamic.parallel", workers=len(jobs), testcases=len(names)
        ):
            with _Pool(max_workers=len(jobs)) as pool:
                outputs = list(pool.map(_run_worker, jobs))
            for index, (matches, payload, wall) in enumerate(outputs):
                for name, match in matches:
                    per_name[name] = match
                if tel.enabled:
                    tel.metrics.merge_raw(payload)
                    tel.metrics.histogram("exec.worker_seconds").observe(wall)
                    tel.metrics.counter(
                        "exec.worker_testcases", worker=index
                    ).inc(len(matches))
        for name in names:
            result.per_testcase[name] = per_name[name]
        return result
